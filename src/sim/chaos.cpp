#include "sim/chaos.h"

#include <algorithm>
#include <sstream>

#include "common/rng.h"

namespace gsalert::sim {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kBlockPair:
      return "block";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kLossBurst:
      return "loss-burst";
    case FaultKind::kLatencySpike:
      return "latency-spike";
    case FaultKind::kDuplication:
      return "duplication";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kRegionalFailure:
      return "regional-failure";
  }
  return "?";
}

namespace {

void sort_faults(std::vector<Fault>& faults) {
  std::stable_sort(faults.begin(), faults.end(),
                   [](const Fault& x, const Fault& y) {
                     return x.start < y.start;
                   });
}

bool overlaps(const Fault& f, SimTime start, SimTime end) {
  return f.start < end && start < f.end;
}

/// True when the fault drives Network::set_partition / clear_partition —
/// those compose with nothing, so at most one such window is active.
bool uses_partition(FaultKind kind) {
  return kind == FaultKind::kPartition ||
         kind == FaultKind::kRegionalFailure;
}

/// True when the fault owns its region's node_latency entries for the
/// window (regional failures and per-region spikes).
bool owns_region_latency(const Fault& f) {
  return f.kind == FaultKind::kRegionalFailure ||
         (f.kind == FaultKind::kLatencySpike && !f.groups.empty());
}

/// Conflict rules keeping begin/end actions composable: same node never
/// crashes twice concurrently, same pair is not blocked twice, only one
/// partition-driving window at a time, targeted windows never stack on
/// the same link/region, and global knob windows of one kind don't stack.
bool conflicts(const std::vector<Fault>& accepted, const Fault& cand) {
  for (const Fault& f : accepted) {
    if (!overlaps(f, cand.start, cand.end)) continue;
    if (uses_partition(f.kind) && uses_partition(cand.kind)) return true;
    if (owns_region_latency(f) && owns_region_latency(cand) &&
        f.region == cand.region) {
      return true;
    }
    if (f.kind != cand.kind) continue;
    switch (cand.kind) {
      case FaultKind::kCrash:
        if (f.node == cand.node) return true;
        break;
      case FaultKind::kBlockPair:
        if ((f.a == cand.a && f.b == cand.b) ||
            (f.a == cand.b && f.b == cand.a)) {
          return true;
        }
        break;
      case FaultKind::kLatencySpike: {
        // Scoped spikes stack freely across distinct targets; two spikes
        // conflict only when they share a scope.
        const bool f_global = !f.a.valid() && f.groups.empty();
        const bool cand_global = !cand.a.valid() && cand.groups.empty();
        if (f_global && cand_global) return true;
        if (f.a.valid() && cand.a.valid() &&
            ((f.a == cand.a && f.b == cand.b) ||
             (f.a == cand.b && f.b == cand.a))) {
          return true;
        }
        break;
      }
      default:
        return true;  // partition / global knobs: one window at a time
    }
  }
  return false;
}

}  // namespace

ChaosSchedule::ChaosSchedule(std::vector<Fault> faults)
    : faults_(std::move(faults)) {
  sort_faults(faults_);
}

ChaosSchedule ChaosSchedule::generate(const ChaosConfig& config,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Fault> faults;

  auto draw_window = [&](Fault& f) {
    const std::int64_t span = std::max<std::int64_t>(
        1, (config.duration - config.min_fault).as_micros());
    f.start = SimTime::micros(rng.uniform_int(0, span));
    const SimTime len = SimTime::micros(rng.uniform_int(
        config.min_fault.as_micros(), config.max_fault.as_micros()));
    f.end = std::min(f.start + len, config.duration);
  };
  auto admit = [&](Fault f) {
    if (f.end <= f.start) return;
    if (conflicts(faults, f)) return;  // deterministic skip, not a retry
    faults.push_back(std::move(f));
  };

  for (int i = 0; i < config.crashes && !config.crash_targets.empty(); ++i) {
    Fault f{.kind = FaultKind::kCrash};
    draw_window(f);
    f.node = config.crash_targets[rng.index(config.crash_targets.size())];
    admit(std::move(f));
  }
  for (int i = 0; i < config.blocks && !config.block_candidates.empty();
       ++i) {
    Fault f{.kind = FaultKind::kBlockPair};
    draw_window(f);
    const auto& pair =
        config.block_candidates[rng.index(config.block_candidates.size())];
    f.a = pair.first;
    f.b = pair.second;
    admit(std::move(f));
  }
  for (int i = 0;
       i < config.partitions && config.partition_units.size() >= 2; ++i) {
    Fault f{.kind = FaultKind::kPartition};
    draw_window(f);
    // Split the units into two camps; every unit travels as a whole so a
    // client is never cut off from its home server by the partition.
    f.groups.resize(2);
    bool both = false;
    for (std::size_t u = 0; u < config.partition_units.size(); ++u) {
      const std::size_t side = rng.chance(0.5) ? 1 : 0;
      both = both || (side == 1);
      auto& group = f.groups[side];
      const auto& unit = config.partition_units[u];
      group.insert(group.end(), unit.begin(), unit.end());
    }
    if (!both || f.groups[0].empty()) continue;  // degenerate split
    admit(std::move(f));
  }
  auto knob_windows = [&](FaultKind kind, int count, double prob,
                          SimTime latency) {
    for (int i = 0; i < count; ++i) {
      Fault f{.kind = kind};
      draw_window(f);
      f.prob = prob;
      f.latency = latency;
      admit(std::move(f));
    }
  };
  knob_windows(FaultKind::kLossBurst, config.loss_bursts, config.burst_loss,
               SimTime::zero());
  knob_windows(FaultKind::kLatencySpike, config.latency_spikes, 0.0,
               config.spike_latency);
  knob_windows(FaultKind::kDuplication, config.duplication_windows,
               config.duplication_prob, SimTime::zero());
  knob_windows(FaultKind::kReorder, config.reorder_windows,
               config.reorder_prob, config.reorder_span);

  // Targeted spikes and regional failures draw after the legacy kinds so
  // a config that requests none reproduces the exact historical stream.
  for (int i = 0;
       i < config.link_spikes && !config.spike_link_candidates.empty();
       ++i) {
    Fault f{.kind = FaultKind::kLatencySpike};
    draw_window(f);
    const auto& link = config.spike_link_candidates[rng.index(
        config.spike_link_candidates.size())];
    f.a = link.first;
    f.b = link.second;
    f.latency = config.spike_latency;
    admit(std::move(f));
  }
  const auto pick_region = [&]() -> std::size_t {
    // Draw among non-empty regions only (deterministic order).
    std::vector<std::size_t> candidates;
    for (std::size_t r = 0; r < config.regions.size(); ++r) {
      if (!config.regions[r].empty()) candidates.push_back(r);
    }
    if (candidates.empty()) return static_cast<std::size_t>(-1);
    return candidates[rng.index(candidates.size())];
  };
  for (int i = 0; i < config.region_spikes && !config.regions.empty(); ++i) {
    Fault f{.kind = FaultKind::kLatencySpike};
    draw_window(f);
    f.region = pick_region();
    if (f.region == static_cast<std::size_t>(-1)) continue;
    f.groups = {config.regions[f.region]};
    f.latency = config.spike_latency;
    admit(std::move(f));
  }
  for (int i = 0;
       i < config.regional_failures && config.regions.size() >= 2; ++i) {
    Fault f{.kind = FaultKind::kRegionalFailure};
    draw_window(f);
    f.region = pick_region();
    if (f.region == static_cast<std::size_t>(-1)) continue;
    f.groups = {config.regions[f.region]};
    f.latency = config.regional_extra_latency;
    admit(std::move(f));
  }

  sort_faults(faults);
  return ChaosSchedule{std::move(faults)};
}

void ChaosSchedule::apply(Network& net) const {
  // Fault begin/end are control actions: in serial mode they land on the
  // scheduler exactly as before (bit-identical replay); in sharded mode
  // the kernel applies them at epoch barriers, where every shard is
  // quiesced (see Network::schedule_control).
  for (const Fault& fault : faults_) {
    switch (fault.kind) {
      case FaultKind::kCrash:
        net.schedule_control(fault.start,
                             [&net, node = fault.node] { net.crash(node); });
        net.schedule_control(fault.end, [&net, node = fault.node] {
          net.restart(node);
        });
        break;
      case FaultKind::kBlockPair:
        net.schedule_control(fault.start, [&net, a = fault.a, b = fault.b] {
          net.block_pair(a, b);
        });
        net.schedule_control(fault.end, [&net, a = fault.a, b = fault.b] {
          net.unblock_pair(a, b);
        });
        break;
      case FaultKind::kPartition:
        net.schedule_control(fault.start, [&net, groups = fault.groups] {
          net.set_partition(groups);
        });
        net.schedule_control(fault.end, [&net] { net.clear_partition(); });
        break;
      case FaultKind::kLossBurst:
        net.schedule_control(fault.start, [&net, p = fault.prob] {
          net.chaos().extra_loss = p;
        });
        net.schedule_control(fault.end,
                             [&net] { net.chaos().extra_loss = 0.0; });
        break;
      case FaultKind::kLatencySpike:
        if (fault.a.valid() && fault.b.valid()) {
          // Per-link spike: only the targeted pair pays.
          net.schedule_control(
              fault.start, [&net, a = fault.a, b = fault.b,
                            d = fault.latency] {
                net.chaos().link_latency[Network::pair_key(a, b)] = d;
              });
          net.schedule_control(fault.end, [&net, a = fault.a, b = fault.b] {
            net.chaos().link_latency.erase(Network::pair_key(a, b));
          });
        } else if (!fault.groups.empty()) {
          // Per-region spike: every link touching a member pays.
          net.schedule_control(
              fault.start, [&net, groups = fault.groups,
                            d = fault.latency] {
                for (const auto& group : groups) {
                  for (NodeId n : group) {
                    net.chaos().node_latency[n.value()] = d;
                  }
                }
              });
          net.schedule_control(fault.end, [&net, groups = fault.groups] {
            for (const auto& group : groups) {
              for (NodeId n : group) net.chaos().node_latency.erase(n.value());
            }
          });
        } else {
          net.schedule_control(fault.start, [&net, d = fault.latency] {
            net.chaos().extra_latency = d;
          });
          net.schedule_control(fault.end, [&net] {
            net.chaos().extra_latency = SimTime::zero();
          });
        }
        break;
      case FaultKind::kRegionalFailure:
        // Correlated failure: the region's links degrade and the region
        // partitions off as one camp; both effects heal together at end.
        net.schedule_control(
            fault.start,
            [&net, groups = fault.groups, d = fault.latency] {
              for (const auto& group : groups) {
                for (NodeId n : group) {
                  net.chaos().node_latency[n.value()] = d;
                }
              }
              net.set_partition(groups);
            });
        net.schedule_control(fault.end, [&net, groups = fault.groups] {
          for (const auto& group : groups) {
            for (NodeId n : group) net.chaos().node_latency.erase(n.value());
          }
          net.clear_partition();
        });
        break;
      case FaultKind::kDuplication:
        net.schedule_control(fault.start, [&net, p = fault.prob] {
          net.chaos().duplication = p;
        });
        net.schedule_control(fault.end,
                             [&net] { net.chaos().duplication = 0.0; });
        break;
      case FaultKind::kReorder:
        net.schedule_control(fault.start,
                             [&net, p = fault.prob, s = fault.latency] {
                               net.chaos().reorder = p;
                               net.chaos().reorder_span = s;
                             });
        net.schedule_control(fault.end, [&net] {
          net.chaos().reorder = 0.0;
          net.chaos().reorder_span = SimTime::zero();
        });
        break;
    }
  }
}

SimTime ChaosSchedule::last_end() const {
  SimTime latest = SimTime::zero();
  for (const Fault& f : faults_) latest = std::max(latest, f.end);
  return latest;
}

bool ChaosSchedule::quiet(SimTime from, SimTime to) const {
  for (const Fault& f : faults_) {
    if (overlaps(f, from, to)) return false;
  }
  return true;
}

ChaosSchedule ChaosSchedule::without(std::size_t index) const {
  std::vector<Fault> rest;
  rest.reserve(faults_.size() - 1);
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (i != index) rest.push_back(faults_[i]);
  }
  return ChaosSchedule{std::move(rest)};
}

std::string ChaosSchedule::describe(const Network& net) const {
  auto node_name = [&net](NodeId id) -> std::string {
    const Node* node = net.node(id);
    return node != nullptr ? node->name()
                           : "node" + std::to_string(id.value());
  };
  std::ostringstream out;
  for (const Fault& f : faults_) {
    out << "  [" << f.start.as_millis() << "ms.." << f.end.as_millis()
        << "ms] " << fault_kind_name(f.kind);
    switch (f.kind) {
      case FaultKind::kCrash:
        out << " " << node_name(f.node);
        break;
      case FaultKind::kBlockPair:
        out << " " << node_name(f.a) << "<->" << node_name(f.b);
        break;
      case FaultKind::kPartition:
        for (const auto& group : f.groups) {
          out << " {";
          for (std::size_t i = 0; i < group.size(); ++i) {
            out << (i > 0 ? "," : "") << node_name(group[i]);
          }
          out << "}";
        }
        break;
      case FaultKind::kLossBurst:
      case FaultKind::kDuplication:
        out << " p=" << f.prob;
        break;
      case FaultKind::kLatencySpike:
        out << " +" << f.latency.as_millis() << "ms";
        if (f.a.valid() && f.b.valid()) {
          out << " on " << node_name(f.a) << "<->" << node_name(f.b);
        } else if (!f.groups.empty()) {
          out << " on region " << f.region << " ("
              << f.groups.front().size() << " nodes)";
        }
        break;
      case FaultKind::kReorder:
        out << " p=" << f.prob << " span=" << f.latency.as_millis() << "ms";
        break;
      case FaultKind::kRegionalFailure:
        out << " region " << f.region << " (";
        if (!f.groups.empty()) {
          const auto& group = f.groups.front();
          for (std::size_t i = 0; i < group.size(); ++i) {
            out << (i > 0 ? "," : "") << node_name(group[i]);
          }
        }
        out << ") +" << f.latency.as_millis() << "ms";
        break;
    }
    out << "\n";
  }
  if (faults_.empty()) out << "  (no faults)\n";
  return out.str();
}

}  // namespace gsalert::sim
