// System-wide invariant checking. A registry holds named checkers that are
// evaluated at quiescence (and optionally mid-run); each checker inspects
// the world through observer hooks or accessors and reports violations.
//
// The sim layer defines only the framework plus the one invariant it can
// state about itself (wire-level packet conservation); scenario-aware
// checkers (GDS exactly-once, tree shape, dangling profiles, post-heal
// delivery) live in workload/chaos_runner and are registered per run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/network.h"

namespace gsalert::sim {

struct Violation {
  std::string invariant;  // checker name
  std::string detail;     // deterministic description of the breach
};

class InvariantChecker {
 public:
  virtual ~InvariantChecker() = default;
  virtual std::string name() const = 0;
  /// Evaluate the invariant and append any violations found.
  virtual void check(std::vector<Violation>& out) = 0;
};

class InvariantRegistry {
 public:
  /// Register a checker; returns the concrete pointer so callers can keep
  /// driving checkers that need mid-run input (snapshots, observers).
  template <typename T>
  T* add(std::unique_ptr<T> checker) {
    T* raw = checker.get();
    checkers_.push_back(std::move(checker));
    return raw;
  }

  /// Run every checker in registration order.
  std::vector<Violation> check_all() const;

  std::size_t size() const { return checkers_.size(); }

  /// One line per checker: "name: ok" or the violations — deterministic,
  /// so a replayed seed produces a byte-identical verdict block.
  std::string report() const;

 private:
  std::vector<std::unique_ptr<InvariantChecker>> checkers_;
};

/// Render violations one per line (empty string when none).
std::string format_violations(const std::vector<Violation>& violations);

/// Wire-level conservation: every packet accepted by send() is accounted
/// for — delivered, dropped for a stated reason, or still in flight —
/// and chaos-injected duplicates are counted explicitly. Holds at any
/// instant of a run (assuming stats were not reset mid-flight).
class WireConservationChecker : public InvariantChecker {
 public:
  explicit WireConservationChecker(const Network& net) : net_(net) {}
  std::string name() const override { return "wire-conservation"; }
  void check(std::vector<Violation>& out) override;

 private:
  const Network& net_;
};

}  // namespace gsalert::sim
