// The simulated network: owns nodes, delivers packets with configurable
// latency/loss, and models failures (node crashes, blocked pairs,
// partitions). Connectivity is internet-like: any node may address any
// other; failures subtract reachability.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/node.h"
#include "sim/scheduler.h"
#include "sim/storage.h"

namespace gsalert::obs {
class MetricsRegistry;
}  // namespace gsalert::obs

namespace gsalert::sim {

/// Transmission characteristics for a path.
struct PathConfig {
  SimTime latency = SimTime::millis(10);  // base one-way latency
  SimTime jitter = SimTime::zero();       // uniform extra in [0, jitter]
  double loss = 0.0;                      // drop probability per packet
};

/// Aggregate counters over the whole network. At any instant the wire
/// conserves packets: sent + duplicated ==
/// delivered + dropped_loss + dropped_down + dropped_blocked + in-flight.
struct NetStats {
  std::uint64_t sent = 0;            // send() calls that found a live sender
  std::uint64_t delivered = 0;       // packets handed to on_packet
  std::uint64_t dropped_loss = 0;    // random loss
  std::uint64_t dropped_down = 0;    // destination crashed (at send or arrival)
  std::uint64_t dropped_blocked = 0; // blocked pair / partition
  std::uint64_t duplicated = 0;      // extra copies injected by chaos
  std::uint64_t bytes_sent = 0;
  // Copy-volume split per transmission (chaos duplicates included):
  // header bytes are owned and memcpy'd per destination, body bytes ride
  // in a refcounted wire::Frame and are only aliased. Before the frame
  // split, every sent byte was copied (bytes_copied == bytes_sent).
  std::uint64_t bytes_copied = 0;
  std::uint64_t bytes_shared = 0;
};

/// Network-wide degradation knobs driven by chaos schedules. They stack on
/// top of per-path configuration, so a fault window can be applied and
/// removed without touching path overrides.
struct NetChaosKnobs {
  double extra_loss = 0.0;       // added to every path's drop probability
  SimTime extra_latency{};       // added to every delivery
  double duplication = 0.0;      // probability a packet is delivered twice
  double reorder = 0.0;          // probability of an extra random delay
  SimTime reorder_span{};        // extra delay bound for reordered packets
};

/// Per-node counters (index by NodeId).
struct NodeStats {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

class Network {
 public:
  explicit Network(std::uint64_t seed = 1) : rng_(seed) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Add a node; the network takes ownership. Returns a pointer of the
  /// concrete type for direct driving from tests and workloads.
  template <typename T>
  T* add_node(std::string name, std::unique_ptr<T> node) {
    T* raw = node.get();
    register_node(std::move(name), std::move(node));
    return raw;
  }

  /// Construct a node in place.
  template <typename T, typename... Args>
  T* make_node(std::string name, Args&&... args) {
    return add_node(std::move(name),
                    std::make_unique<T>(std::forward<Args>(args)...));
  }

  /// Invoke on_start on every node (in id order). Call once after setup.
  void start();

  Scheduler& scheduler() { return scheduler_; }
  SimTime now() const { return scheduler_.now(); }
  Rng& rng() { return rng_; }

  /// Default path characteristics for pairs without an override.
  void set_default_path(PathConfig config) { default_path_ = config; }
  /// Override characteristics for a specific unordered pair.
  void set_path(NodeId a, NodeId b, PathConfig config);

  /// --- Failure injection ------------------------------------------------
  /// Crash: node stops sending/receiving; in-flight packets to it drop,
  /// its storage (if any) loses pending writes per the fault knobs.
  void crash(NodeId node);
  /// Restart a crashed node (on_restart is invoked).
  void restart(NodeId node);
  bool is_up(NodeId node) const;

  /// --- Stable storage -----------------------------------------------------
  /// The node's simulated disk, created on first use. Survives crashes
  /// (minus whatever the crash semantics destroy) for the network's
  /// lifetime.
  Storage& storage(NodeId node);
  bool has_storage(NodeId node) const {
    return storages_.contains(node.value());
  }
  /// Crash-time misbehavior applied to every node's storage (torn writes,
  /// bit flips). Defaults to honest fsync; chaos scenarios raise it.
  StorageFaults& storage_faults() { return storage_faults_; }
  /// Every storage instantiated so far, in id order (invariant checkers
  /// and soak tests scan log sizes through this).
  const std::map<std::uint32_t, std::unique_ptr<Storage>>& storages() const {
    return storages_;
  }

  /// Observer invoked at the instant a node crashes, before storage fault
  /// semantics apply — the durability checker snapshots the node's
  /// in-memory state here. One observer; empty function detaches.
  void set_crash_observer(std::function<void(NodeId)> fn) {
    crash_observer_ = std::move(fn);
  }

  /// Block/unblock communication between an unordered pair.
  void block_pair(NodeId a, NodeId b);
  void unblock_pair(NodeId a, NodeId b);
  bool is_blocked(NodeId a, NodeId b) const;

  /// Partition the network into groups: traffic crossing group boundaries
  /// drops. Nodes absent from all groups land in implicit group 0.
  void set_partition(const std::vector<std::vector<NodeId>>& groups);
  void clear_partition();

  /// Global degradation knobs (loss bursts, latency spikes, duplication,
  /// reordering). Mutable access so chaos faults can adjust single fields.
  NetChaosKnobs& chaos() { return chaos_; }
  const NetChaosKnobs& chaos() const { return chaos_; }

  /// Packets scheduled for delivery but not yet arrived (or dropped).
  std::uint64_t packets_in_flight() const { return in_flight_; }

  /// --- Messaging ----------------------------------------------------------
  /// Send a packet; returns false if it was dropped at send time (sender or
  /// destination down, pair blocked/partitioned) — callers treat the result
  /// as best-effort information only, matching the GDS delivery contract.
  bool send(NodeId from, NodeId to, Packet packet);

  /// Arrange for node's on_timer(token) to fire after `delay` (skipped if
  /// the node is down at fire time).
  void set_timer(NodeId node, SimTime delay, std::uint64_t token);

  /// --- Introspection ------------------------------------------------------
  Node* node(NodeId id) const;
  NodeId find_node(const std::string& name) const;
  std::size_t node_count() const { return nodes_.size(); }

  const NetStats& stats() const { return stats_; }
  void reset_stats();
  const NodeStats& node_stats(NodeId id) const;

  /// Export the aggregate and per-node counters into `registry` under
  /// `net.*` / `net.node.*{node=...}` (see docs/OBSERVABILITY.md).
  void collect_metrics(obs::MetricsRegistry& registry) const;

  /// Run until the event queue drains or `max_events` executed.
  std::size_t run(std::size_t max_events = SIZE_MAX) {
    return scheduler_.run(max_events);
  }
  std::size_t run_until(SimTime deadline) {
    return scheduler_.run_until(deadline);
  }

 private:
  void register_node(std::string name, std::unique_ptr<Node> node);
  const PathConfig& path_for(NodeId a, NodeId b) const;
  static std::uint64_t pair_key(NodeId a, NodeId b);
  void schedule_delivery(NodeId from, NodeId to, Packet packet,
                         SimTime delay);

  Scheduler scheduler_;
  Rng rng_;
  std::vector<std::unique_ptr<Node>> nodes_;  // index = id - 1
  std::vector<bool> up_;
  std::vector<NodeStats> node_stats_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::unordered_map<std::uint64_t, PathConfig> path_overrides_;
  std::unordered_set<std::uint64_t> blocked_;
  std::unordered_map<std::uint32_t, int> partition_group_;  // id -> group
  bool partition_active_ = false;
  std::map<std::uint32_t, std::unique_ptr<Storage>> storages_;
  StorageFaults storage_faults_;
  std::function<void(NodeId)> crash_observer_;
  PathConfig default_path_;
  NetChaosKnobs chaos_;
  std::uint64_t in_flight_ = 0;
  NetStats stats_;
};

}  // namespace gsalert::sim
