// The simulated network: owns nodes, delivers packets with configurable
// latency/loss, and models failures (node crashes, blocked pairs,
// partitions). Connectivity is internet-like: any node may address any
// other; failures subtract reachability.
//
// Execution has two modes:
//  - Serial (default): one Scheduler drives every node, exactly as the
//    original kernel did. Nothing in this mode changed — pop order, rng
//    draw order, and every counter are bit-identical to the pre-sharding
//    kernel, so seed replay and the chaos sweep hold.
//  - Sharded (set_shards(k > 1)): nodes are partitioned across k shards,
//    each with its own Scheduler, Rng stream, and counters, driven by k
//    worker threads under conservative (LBTS-style) synchronization. The
//    lookahead is the minimum latency of any cross-shard path: events a
//    shard executes at time t can only create cross-shard arrivals at
//    t + lookahead or later, so every shard may run an epoch
//    [now, now + lookahead] without hearing from its peers. Cross-shard
//    packets are buffered in per-(src,dst) outboxes owned by the sending
//    shard's thread and merged at the epoch barrier in canonical
//    (when, src_shard, seq) order — the merged schedule is a pure
//    function of (seed, k), independent of thread timing.
// See DESIGN.md "Sharded kernel" for the partitioning rule, the
// lookahead math, and the determinism contract.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/node.h"
#include "sim/scheduler.h"
#include "sim/storage.h"
#include "sim/topology.h"  // PathConfig, Topology

namespace gsalert::obs {
class MetricsRegistry;
}  // namespace gsalert::obs

namespace gsalert::sim {

/// Aggregate counters over the whole network. At any instant the wire
/// conserves packets: sent + duplicated ==
/// delivered + dropped_loss + dropped_down + dropped_blocked + in-flight.
struct NetStats {
  std::uint64_t sent = 0;            // send() calls that found a live sender
  std::uint64_t delivered = 0;       // packets handed to on_packet
  std::uint64_t dropped_loss = 0;    // random loss
  std::uint64_t dropped_down = 0;    // destination crashed (at send or arrival)
  std::uint64_t dropped_blocked = 0; // blocked pair / partition
  std::uint64_t duplicated = 0;      // extra copies injected by chaos
  std::uint64_t bytes_sent = 0;
  // Copy-volume split per transmission (chaos duplicates included):
  // header bytes are owned and memcpy'd per destination, body bytes ride
  // in a refcounted wire::Frame and are only aliased. Before the frame
  // split, every sent byte was copied (bytes_copied == bytes_sent).
  std::uint64_t bytes_copied = 0;
  std::uint64_t bytes_shared = 0;
};

/// Network-wide degradation knobs driven by chaos schedules. They stack on
/// top of per-path configuration, so a fault window can be applied and
/// removed without touching path overrides.
struct NetChaosKnobs {
  double extra_loss = 0.0;       // added to every path's drop probability
  SimTime extra_latency{};       // added to every delivery
  double duplication = 0.0;      // probability a packet is delivered twice
  double reorder = 0.0;          // probability of an extra random delay
  SimTime reorder_span{};        // extra delay bound for reordered packets
  /// Targeted latency spikes, stacked on the global extra_latency: per
  /// unordered link (keyed by Network::pair_key) and per node (regional
  /// fault windows add every member of the region). A delivery pays the
  /// link entry for its pair plus the worse of its two endpoints' node
  /// entries. Added delay only — the cross-shard lookahead stays valid.
  std::unordered_map<std::uint64_t, SimTime> link_latency;
  std::unordered_map<std::uint32_t, SimTime> node_latency;

  SimTime targeted_extra(NodeId from, NodeId to) const;
};

/// Per-node counters (index by NodeId).
struct NodeStats {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

class Network {
 public:
  /// One partition of the node set: its own event queue, rng stream, and
  /// counters, touched only by its worker thread during an epoch and
  /// only by the main thread between epochs (the worker pool's mutex
  /// orders the two). Public so the kernel internals are introspectable
  /// from tests; not part of the driving API.
  struct Shard {
    /// One cross-shard packet, buffered until the epoch barrier. `seq`
    /// is the sending shard's running counter: together with (when, src)
    /// it gives the barrier merge a canonical total order that no thread
    /// interleaving can perturb.
    struct CrossPacket {
      SimTime when;
      std::uint32_t src;
      std::uint64_t seq;
      NodeId from;
      NodeId to;
      Packet packet;
    };

    Shard(std::uint32_t index_, std::size_t k, std::uint64_t seed)
        : index(index_),
          rng(seed ^ (0x9E3779B97F4A7C15ull * (index_ + 1))),
          outbox(k) {}

    std::uint32_t index;
    Scheduler scheduler;
    Rng rng;
    NetStats stats;
    std::uint64_t in_flight = 0;
    std::uint64_t stalls = 0;     // epochs in which this shard ran nothing
    std::uint64_t busy_ns = 0;    // wall time spent executing events
    std::uint64_t cross_out = 0;  // deliveries that left this shard
    std::uint64_t local_out = 0;  // deliveries that stayed intra-shard
    std::uint64_t out_seq = 0;    // next CrossPacket seq
    std::uint64_t node_count = 0;
    std::vector<std::vector<CrossPacket>> outbox;  // index = dest shard
  };

  explicit Network(std::uint64_t seed = 1);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Add a node; the network takes ownership. Returns a pointer of the
  /// concrete type for direct driving from tests and workloads.
  template <typename T>
  T* add_node(std::string name, std::unique_ptr<T> node) {
    T* raw = node.get();
    register_node(std::move(name), std::move(node));
    return raw;
  }

  /// Construct a node in place.
  template <typename T, typename... Args>
  T* make_node(std::string name, Args&&... args) {
    return add_node(std::move(name),
                    std::make_unique<T>(std::forward<Args>(args)...));
  }

  /// Invoke on_start on every node (in id order). Call once after setup.
  void start();

  /// The serial scheduler. Meaningful only in serial mode; sharded runs
  /// keep their queues per shard and this one stays empty.
  Scheduler& scheduler() { return scheduler_; }

  /// Current virtual time for the calling context: a shard worker sees
  /// its own shard clock, everyone else sees the global (barrier) clock —
  /// which in serial mode is simply the scheduler clock.
  SimTime now() const;

  /// Deterministic random stream for the calling context (the shard's
  /// stream on a worker thread, the base stream otherwise).
  Rng& rng();

  /// --- Sharded execution --------------------------------------------------
  /// Partition the nodes onto `k` shards and switch to parallel epoch
  /// execution. `assignment[i]` is the shard of node value i+1 (see
  /// sim/sharding.h for generators); empty means contiguous blocks.
  /// Must be called before any event is queued (typically before
  /// start()). k <= 1 is a no-op: the network stays on the serial,
  /// bit-identical kernel.
  void set_shards(std::size_t k, std::vector<std::uint32_t> assignment = {});

  bool sharded() const { return !shards_.empty(); }
  std::size_t shard_count() const { return sharded() ? shards_.size() : 1; }
  /// Shard of a node (0 in serial mode).
  std::uint32_t shard_of(NodeId node) const {
    return sharded() ? shard_of_[node.value() - 1] : 0;
  }
  /// Conservative lookahead = min latency of any cross-shard path.
  SimTime lookahead() const { return lookahead_; }

  /// Schedule a control action (fault injection, probes) `delay` from the
  /// current global time. Serial mode: a plain scheduler event, exactly
  /// as chaos always scheduled faults. Sharded mode: queued on the
  /// control timeline and applied at the first epoch barrier at or after
  /// its due time — faults are quantized to barriers (error < lookahead),
  /// which keeps them outside the parallel phase where they would race.
  void schedule_control(SimTime delay, std::function<void()> action);

  /// Observer invoked at every epoch barrier with the barrier time, while
  /// all shards are quiesced — the consistent global snapshot point where
  /// invariant checkers may scan cross-shard state. One observer; empty
  /// function detaches. Never invoked in serial mode.
  void set_barrier_observer(std::function<void(SimTime)> fn) {
    barrier_observer_ = std::move(fn);
  }

  /// Default path characteristics for pairs without an override.
  void set_default_path(PathConfig config);
  /// Override characteristics for a specific unordered pair. When
  /// already sharded, a zero-latency config for a cross-shard pair is
  /// rejected here (naming the pair) rather than failing later in run().
  void set_path(NodeId a, NodeId b, PathConfig config);

  /// Install a WAN topology: path lookup becomes override -> region
  /// matrix -> default, and the cross-shard lookahead derives from the
  /// matrix (minimum entry over region pairs that actually span shards).
  /// Legal before or after set_shards, but not mid-run.
  void set_topology(Topology topo);
  const Topology* topology() const {
    return topology_ ? &*topology_ : nullptr;
  }
  /// Region of a node under the installed topology (0 without one).
  std::size_t region_of(NodeId node) const;
  /// Every node in `region` under the installed topology, in id order.
  std::vector<NodeId> nodes_in_region(std::size_t region) const;

  /// Resolved path characteristics for a pair (override, then topology
  /// matrix, then default) — what send() will actually use.
  const PathConfig& path(NodeId a, NodeId b) const { return path_for(a, b); }

  /// Canonical unordered-pair key, shared with NetChaosKnobs'
  /// per-link targeting maps.
  static std::uint64_t pair_key(NodeId a, NodeId b);

  /// --- Failure injection ------------------------------------------------
  /// Crash: node stops sending/receiving; in-flight packets to it drop,
  /// its storage (if any) loses pending writes per the fault knobs.
  /// Sharded mode: only legal at quiescence / a barrier (route mid-run
  /// faults through schedule_control).
  void crash(NodeId node);
  /// Restart a crashed node (on_restart is invoked).
  void restart(NodeId node);
  bool is_up(NodeId node) const;

  /// --- Stable storage -----------------------------------------------------
  /// The node's simulated disk, created on first use. Survives crashes
  /// (minus whatever the crash semantics destroy) for the network's
  /// lifetime. set_shards pre-creates every node's storage so worker
  /// threads never mutate the map.
  Storage& storage(NodeId node);
  bool has_storage(NodeId node) const {
    return storages_.contains(node.value());
  }
  /// Crash-time misbehavior applied to every node's storage (torn writes,
  /// bit flips). Defaults to honest fsync; chaos scenarios raise it.
  StorageFaults& storage_faults() { return storage_faults_; }
  /// Every storage instantiated so far, in id order (invariant checkers
  /// and soak tests scan log sizes through this).
  const std::map<std::uint32_t, std::unique_ptr<Storage>>& storages() const {
    return storages_;
  }

  /// Observer invoked at the instant a node crashes, before storage fault
  /// semantics apply — the durability checker snapshots the node's
  /// in-memory state here. One observer; empty function detaches.
  void set_crash_observer(std::function<void(NodeId)> fn) {
    crash_observer_ = std::move(fn);
  }

  /// Block/unblock communication between an unordered pair.
  void block_pair(NodeId a, NodeId b);
  void unblock_pair(NodeId a, NodeId b);
  bool is_blocked(NodeId a, NodeId b) const;

  /// Partition the network into groups: traffic crossing group boundaries
  /// drops. Nodes absent from all groups land in implicit group 0.
  void set_partition(const std::vector<std::vector<NodeId>>& groups);
  void clear_partition();

  /// Global degradation knobs (loss bursts, latency spikes, duplication,
  /// reordering). Mutable access so chaos faults can adjust single fields.
  NetChaosKnobs& chaos() { return chaos_; }
  const NetChaosKnobs& chaos() const { return chaos_; }

  /// Packets scheduled for delivery but not yet arrived (or dropped),
  /// including cross-shard packets still waiting in outboxes.
  std::uint64_t packets_in_flight() const;

  /// --- Messaging ----------------------------------------------------------
  /// Send a packet; returns false if it was dropped at send time (sender or
  /// destination down, pair blocked/partitioned) — callers treat the result
  /// as best-effort information only, matching the GDS delivery contract.
  bool send(NodeId from, NodeId to, Packet packet);

  /// Arrange for node's on_timer(token) to fire after `delay` (skipped if
  /// the node is down at fire time).
  void set_timer(NodeId node, SimTime delay, std::uint64_t token);

  /// --- Introspection ------------------------------------------------------
  Node* node(NodeId id) const;
  NodeId find_node(const std::string& name) const;
  std::size_t node_count() const { return nodes_.size(); }

  /// Aggregate counters; in sharded mode a merged view over all shards
  /// (only valid at quiescence, like every other sharded-mode read).
  const NetStats& stats() const;
  void reset_stats();
  const NodeStats& node_stats(NodeId id) const;

  /// Export the aggregate and per-node counters into `registry` under
  /// `net.*` / `net.node.*{node=...}`, plus `sim.shard.*` when sharded
  /// (see docs/OBSERVABILITY.md).
  void collect_metrics(obs::MetricsRegistry& registry) const;

  /// Export kernel counters (`sim.sched.*`, and `sim.shard.*` when
  /// sharded) regardless of mode — bench harnesses call this to compare
  /// serial and sharded rows side by side.
  void collect_kernel_metrics(obs::MetricsRegistry& registry) const;

  /// Run until the event queue drains or `max_events` executed. Sharded
  /// mode checks `max_events` at epoch granularity.
  std::size_t run(std::size_t max_events = SIZE_MAX);
  /// Run all events with timestamp <= deadline; the clock always advances
  /// to `deadline` (see Scheduler::run_until).
  std::size_t run_until(SimTime deadline);

 private:
  struct Pool;

  void register_node(std::string name, std::unique_ptr<Node> node);
  const PathConfig& path_for(NodeId a, NodeId b) const;
  /// Throw (naming the offending pair) if any cross-shard path has zero
  /// latency — called from every config path that can collapse the
  /// lookahead, so misconfiguration surfaces at setup time.
  void check_lookahead() const;
  void schedule_delivery(NodeId from, NodeId to, Packet packet,
                         SimTime delay);
  /// Arrival-time half of a delivery (drop re-checks + on_packet).
  void deliver(NodeId from, NodeId to, Packet packet);
  /// Queue the arrival on `shard`'s scheduler at absolute time `when`.
  void queue_arrival(std::size_t shard, SimTime when, NodeId from, NodeId to,
                     Packet packet);

  Scheduler& sched_for(NodeId node);
  Rng& rng_for(NodeId node);
  NetStats& stats_for(NodeId node);
  std::uint64_t& inflight_for(NodeId node);

  void recompute_lookahead();
  /// Drain every shard's outboxes into the destination schedulers in
  /// canonical (when, src_shard, seq) order. Barrier-time only.
  void merge_outboxes();
  std::size_t run_sharded(SimTime deadline, std::size_t max_events,
                          bool advance_to_deadline);

  std::uint64_t seed_;
  Scheduler scheduler_;
  Rng rng_;
  std::vector<std::unique_ptr<Node>> nodes_;  // index = id - 1
  std::vector<bool> up_;
  std::vector<NodeStats> node_stats_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::unordered_map<std::uint64_t, PathConfig> path_overrides_;
  std::unordered_set<std::uint64_t> blocked_;
  std::unordered_map<std::uint32_t, int> partition_group_;  // id -> group
  bool partition_active_ = false;
  std::map<std::uint32_t, std::unique_ptr<Storage>> storages_;
  StorageFaults storage_faults_;
  std::function<void(NodeId)> crash_observer_;
  PathConfig default_path_;
  std::optional<Topology> topology_;
  NetChaosKnobs chaos_;
  std::uint64_t in_flight_ = 0;
  NetStats stats_;

  // --- Sharded-mode state (empty / inert in serial mode) ---
  std::vector<Shard> shards_;
  std::vector<std::uint32_t> shard_of_;  // index = id - 1
  SimTime lookahead_ = SimTime::zero();
  SimTime global_now_ = SimTime::zero();
  Scheduler control_;  // barrier-applied control actions (faults, probes)
  std::function<void(SimTime)> barrier_observer_;
  std::unique_ptr<Pool> pool_;
  std::uint64_t barriers_ = 0;
  mutable NetStats merged_stats_;  // scratch for stats() in sharded mode
};

}  // namespace gsalert::sim
