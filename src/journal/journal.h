// Append-only write-ahead journal over sim::Storage, with group-commit
// batching, periodic snapshot + compaction, and replay-on-restart.
//
// Record framing (all little-endian, encoded with wire::Writer):
//
//   u32  magic        'GSJL'
//   u32  payload_len
//   u64  lsn          strictly increasing, never reused
//   u8   type         owner-defined record type
//   ...  payload      payload_len bytes
//   u32  crc32c       over (payload_len, lsn, type, payload)
//
// Files on the owning node's Storage, named from the journal name:
//
//   <name>.log        the record stream; appends buffer in the storage's
//                     pending tail, commit() flushes them in one fsync
//                     (group commit — one durable write per sim event,
//                     however many records the handler produced)
//   <name>.snap       one snapshot record (same framing, type 255) whose
//                     lsn says which log prefix it covers
//   <name>.snap.tmp   compaction scratch; ignored and deleted by recovery
//
// Compaction: when the durable log crosses the policy threshold, the
// owner's snapshot writer serializes full state into <name>.snap.tmp,
// which is flushed, atomically renamed over <name>.snap, and only then is
// the log truncated. A crash at ANY point in that sequence recovers: the
// old snapshot + full log before the rename, the new snapshot + a log
// whose records are all covered (and skipped by lsn) after it.
//
// Recovery: load the snapshot if its CRC holds, then scan the log for the
// longest valid record prefix — stopping at the first bad magic, bad
// length, CRC mismatch, or non-increasing lsn — replaying records whose
// lsn exceeds the snapshot's. The invalid tail is truncated so future
// appends never interleave with garbage. Recovery is idempotent: running
// it twice over the same storage yields the same state and the same
// RecoveryResult.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "common/types.h"
#include "obs/latency.h"
#include "sim/storage.h"
#include "wire/codec.h"

namespace gsalert::obs {
class MetricsRegistry;
}  // namespace gsalert::obs

namespace gsalert::journal {

inline constexpr std::uint32_t kMagic = 0x4C4A5347u;  // "GSJL"
inline constexpr std::uint8_t kSnapshotType = 255;
inline constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 1;
inline constexpr std::size_t kTrailerBytes = 4;

/// Total framed size of a record with `payload` payload bytes — callers
/// reserve this (plus their payload) so journal writes never reallocate
/// mid-encode (the perf budget counts Writer grows).
constexpr std::size_t record_wire_size(std::size_t payload) {
  return kHeaderBytes + payload + kTrailerBytes;
}

struct JournalPolicy {
  /// Compact (snapshot + truncate) when the durable log crosses this.
  /// 0 disables size-triggered compaction.
  std::size_t compact_threshold_bytes = 64 * 1024;
  /// Emit per-append / per-fsync spans. Off by default: one fsync per
  /// sim event would crowd useful history out of the bounded flight
  /// recorder. Replay and compaction always get spans (they are rare).
  bool trace_io = false;
};

struct JournalStats {
  std::uint64_t appends = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t commits = 0;         // fsyncs (group commits)
  std::uint64_t compactions = 0;
  std::uint64_t snapshot_bytes = 0;  // size of the latest snapshot record
  std::uint64_t recoveries = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t records_skipped = 0;     // covered by the snapshot
  std::uint64_t torn_bytes_dropped = 0;  // invalid tails truncated away
};

struct RecoveryResult {
  bool snapshot_loaded = false;
  std::uint64_t snapshot_lsn = 0;
  std::uint64_t last_lsn = 0;  // highest lsn recovered (snapshot or log)
  std::uint64_t records_applied = 0;
  std::uint64_t records_skipped = 0;
  std::uint64_t torn_bytes_dropped = 0;
};

/// Result of walking a byte buffer as a record stream.
struct ScanResult {
  std::uint64_t records = 0;
  std::size_t valid_bytes = 0;  // length of the longest valid prefix
  std::uint64_t first_lsn = 0;
  std::uint64_t last_lsn = 0;
};

/// Walk `bytes` as framed records, invoking `fn` for each valid one and
/// stopping at the first invalid frame. Total on arbitrary input — this
/// is the decoder the fuzz harness drives.
ScanResult scan_records(
    std::span<const std::byte> bytes,
    const std::function<void(std::uint8_t type,
                             std::span<const std::byte> payload,
                             std::uint64_t lsn)>& fn = nullptr);

class Journal {
 public:
  using ReplayFn = std::function<void(std::uint8_t type, wire::Reader& payload,
                                      std::uint64_t lsn)>;
  using SnapshotWriter = std::function<void(wire::Writer&)>;
  using SnapshotLoader = std::function<void(wire::Reader&)>;

  /// `name` prefixes the storage file names; `node` labels spans and
  /// metrics with the owning node.
  Journal(sim::Storage& storage, std::string name, std::string node,
          JournalPolicy policy = {});

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Frame and append one record. The payload Writer should have been
  /// reserved to its exact encoded size. Buffered (not durable) until
  /// commit().
  void append(std::uint8_t type, wire::Writer payload);

  /// Group commit: one fsync covering every append since the last commit.
  /// May trigger compaction afterwards. No-op when clean.
  void commit();

  bool dirty() const { return dirty_; }

  /// Owner callback that serializes full durable state for compaction.
  /// Compaction is skipped (the log grows without bound) until this set.
  void set_snapshot_writer(SnapshotWriter fn) {
    snapshot_writer_ = std::move(fn);
  }

  /// Clock used to timestamp spans; defaults to SimTime::zero() so
  /// storage-only unit tests need no network.
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }

  /// Force a snapshot + log truncation now (commit() auto-compacts when
  /// the log crosses the policy threshold).
  void compact();

  /// Load snapshot (if valid), replay the longest valid log prefix,
  /// truncate any invalid tail. Replay calls `replay` only for records
  /// past the snapshot's lsn; `load` sees the snapshot payload.
  RecoveryResult recover(const SnapshotLoader& load, const ReplayFn& replay);

  std::uint64_t next_lsn() const { return next_lsn_; }
  std::uint64_t snapshot_lsn() const { return snapshot_lsn_; }
  /// Durable + pending log bytes (the growth the soak test bounds).
  std::size_t log_bytes() const;
  /// Bytes appended but not yet fsynced — the journal backlog a stalled
  /// group commit would lose. Feeds the per-node health scoreboard.
  std::size_t pending_bytes() const;
  /// Wall-clock microseconds per group commit. Like match CPU, kept out
  /// of collect_metrics (wall time would break seed-replay determinism);
  /// workload::Scenario merges it into the Outcome's LatencyBreakdown.
  const obs::LatencyHistogram& fsync_us() const { return fsync_us_; }

  const JournalStats& stats() const { return stats_; }
  const std::string& log_file() const { return log_; }
  const std::string& snapshot_file() const { return snap_; }

  /// Export under journal.*{node=...} (see docs/OBSERVABILITY.md).
  void collect_metrics(obs::MetricsRegistry& registry) const;

 private:
  void append_record_to(const std::string& file, std::uint8_t type,
                        std::uint64_t lsn,
                        std::span<const std::byte> payload);
  void maybe_compact();
  SimTime now() const { return clock_ ? clock_() : SimTime::zero(); }

  sim::Storage& storage_;
  std::string name_;
  std::string node_;
  JournalPolicy policy_;
  std::string log_;
  std::string snap_;
  std::string tmp_;
  std::uint64_t next_lsn_ = 1;
  std::uint64_t snapshot_lsn_ = 0;
  bool dirty_ = false;
  SnapshotWriter snapshot_writer_;
  std::function<SimTime()> clock_;
  JournalStats stats_;
  obs::LatencyHistogram fsync_us_;
};

}  // namespace gsalert::journal
