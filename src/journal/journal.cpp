#include "journal/journal.h"

#include <chrono>
#include <cstring>
#include <utility>

#include "journal/crc32c.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace gsalert::journal {

namespace {

std::uint32_t read_u32(std::span<const std::byte> bytes, std::size_t at) {
  std::uint32_t v = 0;
  std::memcpy(&v, bytes.data() + at, sizeof(v));
  return v;
}

std::uint64_t read_u64(std::span<const std::byte> bytes, std::size_t at) {
  std::uint64_t v = 0;
  std::memcpy(&v, bytes.data() + at, sizeof(v));
  return v;
}

}  // namespace

ScanResult scan_records(
    std::span<const std::byte> bytes,
    const std::function<void(std::uint8_t, std::span<const std::byte>,
                             std::uint64_t)>& fn) {
  ScanResult result;
  std::size_t pos = 0;
  std::uint64_t prev_lsn = 0;
  while (bytes.size() - pos >= kHeaderBytes + kTrailerBytes) {
    if (read_u32(bytes, pos) != kMagic) break;
    const std::uint32_t len = read_u32(bytes, pos + 4);
    const std::uint64_t lsn = read_u64(bytes, pos + 8);
    const std::uint8_t type = static_cast<std::uint8_t>(bytes[pos + 16]);
    const std::size_t total = record_wire_size(len);
    if (len > bytes.size() - pos - kHeaderBytes - kTrailerBytes) break;
    const std::span<const std::byte> payload = bytes.subspan(pos + kHeaderBytes, len);
    Crc32c crc;
    crc.u32(len);
    crc.u64(lsn);
    crc.u8(type);
    crc.update(payload);
    if (crc.value() != read_u32(bytes, pos + kHeaderBytes + len)) break;
    // LSNs only move forward; a repeat or regression means the tail was
    // overwritten or spliced — treat it as corruption.
    if (lsn <= prev_lsn) break;
    prev_lsn = lsn;
    if (result.records == 0) result.first_lsn = lsn;
    result.records += 1;
    result.last_lsn = lsn;
    if (fn) fn(type, payload, lsn);
    pos += total;
  }
  result.valid_bytes = pos;
  return result;
}

Journal::Journal(sim::Storage& storage, std::string name, std::string node,
                 JournalPolicy policy)
    : storage_(storage),
      name_(std::move(name)),
      node_(std::move(node)),
      policy_(policy),
      log_(name_ + ".log"),
      snap_(name_ + ".snap"),
      tmp_(name_ + ".snap.tmp") {}

void Journal::append_record_to(const std::string& file, std::uint8_t type,
                               std::uint64_t lsn,
                               std::span<const std::byte> payload) {
  wire::Writer frame;
  frame.reserve(record_wire_size(payload.size()));
  frame.u32(kMagic);
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u64(lsn);
  frame.u8(type);
  frame.raw(payload);
  Crc32c crc;
  crc.u32(static_cast<std::uint32_t>(payload.size()));
  crc.u64(lsn);
  crc.u8(type);
  crc.update(payload);
  frame.u32(crc.value());
  const std::vector<std::byte> bytes = std::move(frame).take();
  storage_.append(file, bytes);
}

void Journal::append(std::uint8_t type, wire::Writer payload) {
  const std::vector<std::byte> bytes = std::move(payload).take();
  const std::uint64_t lsn = next_lsn_++;
  append_record_to(log_, type, lsn, bytes);
  dirty_ = true;
  stats_.appends += 1;
  stats_.bytes_appended += record_wire_size(bytes.size());
  if (policy_.trace_io && obs::active()) {
    obs::emit_span("journal-append", node_, now(),
                   {{"lsn", std::to_string(lsn)},
                    {"type", std::to_string(type)}});
  }
}

void Journal::commit() {
  if (!dirty_) return;
  GSALERT_PROFILE("journal.commit");
  const auto t0 = std::chrono::steady_clock::now();
  storage_.flush(log_);
  fsync_us_.record(
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count()) /
      1000.0);
  dirty_ = false;
  stats_.commits += 1;
  if (policy_.trace_io && obs::active()) {
    obs::emit_span("journal-fsync", node_, now(),
                   {{"log_bytes", std::to_string(storage_.durable_size(log_))}});
  }
  maybe_compact();
}

void Journal::maybe_compact() {
  if (!snapshot_writer_ || policy_.compact_threshold_bytes == 0) return;
  if (storage_.durable_size(log_) < policy_.compact_threshold_bytes) return;
  compact();
}

void Journal::compact() {
  if (!snapshot_writer_ || next_lsn_ == 1) return;
  GSALERT_PROFILE("journal.compact");
  if (dirty_) {
    storage_.flush(log_);
    dirty_ = false;
    stats_.commits += 1;
  }
  const std::uint64_t covered = next_lsn_ - 1;
  // Snapshot payloads are owner-sized and rare; encode without a reserve
  // (growing an unreserved Writer is counted but cheap at this rate).
  wire::Writer payload;
  snapshot_writer_(payload);
  const std::vector<std::byte> bytes = std::move(payload).take();
  // Scratch -> fsync -> atomic rename -> truncate. Any crash point leaves
  // a recoverable pair (see header comment).
  storage_.remove(tmp_);
  append_record_to(tmp_, kSnapshotType, covered, bytes);
  storage_.flush(tmp_);
  storage_.rename(tmp_, snap_);
  storage_.truncate(log_, 0);
  snapshot_lsn_ = covered;
  stats_.compactions += 1;
  stats_.snapshot_bytes = record_wire_size(bytes.size());
  if (obs::active()) {
    obs::emit_span("journal-compact", node_, now(),
                   {{"covered_lsn", std::to_string(covered)},
                    {"snapshot_bytes", std::to_string(bytes.size())}});
  }
}

RecoveryResult Journal::recover(const SnapshotLoader& load,
                                const ReplayFn& replay) {
  GSALERT_PROFILE("journal.recover");
  RecoveryResult result;
  stats_.recoveries += 1;

  // A leftover scratch file means we crashed mid-compaction before the
  // rename; the snapshot it was building never took effect.
  storage_.remove(tmp_);

  // Snapshot: a single framed record; loaded only if it validates.
  if (storage_.exists(snap_)) {
    const auto snap_bytes = storage_.read(snap_);
    scan_records(snap_bytes, [&](std::uint8_t type,
                                 std::span<const std::byte> payload,
                                 std::uint64_t lsn) {
      if (type != kSnapshotType || result.snapshot_loaded) return;
      wire::Reader reader(payload);
      load(reader);
      result.snapshot_loaded = true;
      result.snapshot_lsn = lsn;
    });
  }
  snapshot_lsn_ = result.snapshot_lsn;

  // Log: replay the longest valid prefix, skipping covered records.
  const auto log_bytes_span = storage_.read(log_);
  const ScanResult scan = scan_records(
      log_bytes_span, [&](std::uint8_t type, std::span<const std::byte> payload,
                          std::uint64_t lsn) {
        if (lsn <= result.snapshot_lsn) {
          result.records_skipped += 1;
          return;
        }
        wire::Reader reader(payload);
        replay(type, reader, lsn);
        result.records_applied += 1;
      });

  // Truncate the invalid tail so future appends never follow garbage.
  if (scan.valid_bytes < log_bytes_span.size()) {
    result.torn_bytes_dropped = log_bytes_span.size() - scan.valid_bytes;
    storage_.truncate(log_, scan.valid_bytes);
  }

  result.last_lsn = std::max(result.snapshot_lsn, scan.last_lsn);
  next_lsn_ = result.last_lsn + 1;
  dirty_ = false;
  stats_.records_replayed += result.records_applied;
  stats_.records_skipped += result.records_skipped;
  stats_.torn_bytes_dropped += result.torn_bytes_dropped;
  if (obs::active()) {
    obs::emit_span("journal-replay", node_, now(),
                   {{"applied", std::to_string(result.records_applied)},
                    {"skipped", std::to_string(result.records_skipped)},
                    {"torn_bytes",
                     std::to_string(result.torn_bytes_dropped)}});
  }
  return result;
}

std::size_t Journal::log_bytes() const {
  return storage_.durable_size(log_) + storage_.pending_size(log_);
}

std::size_t Journal::pending_bytes() const {
  return storage_.pending_size(log_);
}

void Journal::collect_metrics(obs::MetricsRegistry& registry) const {
  const obs::Labels labels{{"node", node_}};
  registry.counter("journal.appends", labels) = stats_.appends;
  registry.counter("journal.bytes_appended", labels) = stats_.bytes_appended;
  registry.counter("journal.commits", labels) = stats_.commits;
  registry.counter("journal.compactions", labels) = stats_.compactions;
  registry.counter("journal.recoveries", labels) = stats_.recoveries;
  registry.counter("journal.records_replayed", labels) =
      stats_.records_replayed;
  registry.counter("journal.records_skipped", labels) = stats_.records_skipped;
  registry.counter("journal.torn_bytes_dropped", labels) =
      stats_.torn_bytes_dropped;
  registry.gauge("journal.log_bytes", labels) =
      static_cast<double>(log_bytes());
  registry.gauge("journal.snapshot_bytes", labels) =
      static_cast<double>(stats_.snapshot_bytes);
}

}  // namespace gsalert::journal
