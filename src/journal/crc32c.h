// CRC32C (Castagnoli polynomial), software table implementation — the
// checksum guarding every journal record. Streaming interface so framed
// fields can be folded in without materializing a contiguous buffer:
//
//   Crc32c crc;
//   crc.u32(len); crc.u64(lsn); crc.u8(type); crc.update(payload);
//   frame.u32(crc.value());
//
// CRC32C detects all single-bit errors and all burst errors up to 32
// bits — exactly the torn-write / bit-flip corruption the sim storage
// injects.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace gsalert::journal {

class Crc32c {
 public:
  void update(std::span<const std::byte> bytes);

  // Integer fields folded in little-endian, matching wire::Writer.
  void u8(std::uint8_t v) { update_byte(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) update_byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) update_byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  std::uint32_t value() const { return ~state_; }

 private:
  void update_byte(std::uint8_t b);

  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience.
std::uint32_t crc32c(std::span<const std::byte> bytes);

}  // namespace gsalert::journal
