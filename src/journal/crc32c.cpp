#include "journal/crc32c.h"

#include <array>

namespace gsalert::journal {

namespace {

// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

void Crc32c::update_byte(std::uint8_t b) {
  state_ = kTable[(state_ ^ b) & 0xFFu] ^ (state_ >> 8);
}

void Crc32c::update(std::span<const std::byte> bytes) {
  for (const std::byte b : bytes) {
    update_byte(static_cast<std::uint8_t>(b));
  }
}

std::uint32_t crc32c(std::span<const std::byte> bytes) {
  Crc32c crc;
  crc.update(bytes);
  return crc.value();
}

}  // namespace gsalert::journal
