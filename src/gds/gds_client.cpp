#include "gds/gds_client.h"

#include <cassert>

namespace gsalert::gds {

void GdsClient::attach(sim::Network* net, NodeId self, std::string self_name,
                       NodeId gds_node) {
  assert(net != nullptr);
  net_ = net;
  self_ = self;
  self_name_ = std::move(self_name);
  gds_node_ = gds_node;
  endpoint_.attach(net_, self_, self_name_, kEndpointTag,
                   0x9D5C11E47ULL ^ self_.value());
}

bool GdsClient::on_timer(std::uint64_t token) {
  if (token == kRefreshTimer) {
    on_refresh_timer();
    return true;
  }
  return endpoint_.on_timer(token);
}

void GdsClient::send_register() {
  RegisterBody body{self_name_};
  wire::Writer w;
  body.encode(w);
  wire::Envelope env = wire::make_envelope(
      wire::MessageType::kGdsRegister, self_name_, "", next_seq_++,
      std::move(w));
  net_->send(self_, gds_node_, env.pack());
}

void GdsClient::start() {
  if (!attached()) return;
  send_register();
  net_->set_timer(self_, refresh_interval_, kRefreshTimer);
}

void GdsClient::on_refresh_timer() {
  if (!attached()) return;
  send_register();
  net_->set_timer(self_, refresh_interval_, kRefreshTimer);
}

void GdsClient::unregister() {
  if (!attached()) return;
  RegisterBody body{self_name_};
  wire::Writer w;
  body.encode(w);
  wire::Envelope env = wire::make_envelope(
      wire::MessageType::kGdsUnregister, self_name_, "", next_seq_++,
      std::move(w));
  net_->send(self_, gds_node_, env.pack());
}

std::uint64_t GdsClient::broadcast(std::uint16_t payload_type,
                                   std::vector<std::byte> payload) {
  assert(attached());
  BroadcastBody body;
  body.origin_server = self_name_;
  body.seq = next_seq_++;
  body.payload_type = payload_type;
  body.payload = std::move(payload);
  wire::Writer w;
  w.reserve(body.wire_size());
  body.encode(w);
  wire::Envelope env = wire::make_envelope(
      wire::MessageType::kGdsBroadcast, self_name_, "", body.seq,
      std::move(w));
  net_->send(self_, gds_node_, env.pack());
  return body.seq;
}

void GdsClient::relay(const std::string& dst, std::uint16_t payload_type,
                      std::vector<std::byte> payload) {
  assert(attached());
  RelayBody body;
  body.origin_server = self_name_;
  body.dst_server = dst;
  body.payload_type = payload_type;
  body.payload = std::move(payload);
  wire::Writer w;
  // str + str + u16 + bytes
  w.reserve(4 + body.origin_server.size() + 4 + body.dst_server.size() + 2 +
            4 + body.payload.size());
  body.encode(w);
  wire::Envelope env = wire::make_envelope(
      wire::MessageType::kGdsRelay, self_name_, dst, next_seq_++,
      std::move(w));
  net_->send(self_, gds_node_, env.pack());
}

std::uint64_t GdsClient::multicast(std::vector<std::string> targets,
                                   std::uint16_t payload_type,
                                   std::vector<std::byte> payload) {
  assert(attached());
  MulticastBody body;
  body.origin_server = self_name_;
  body.seq = next_seq_++;
  body.targets = std::move(targets);
  body.payload_type = payload_type;
  body.payload = std::move(payload);
  wire::Writer w;
  body.encode(w);
  wire::Envelope env = wire::make_envelope(
      wire::MessageType::kGdsMulticast, self_name_, "", body.seq,
      std::move(w));
  net_->send(self_, gds_node_, env.pack());
  return body.seq;
}

void GdsClient::resolve(const std::string& server_name,
                        ResolveCallback callback) {
  assert(attached());
  ResolveBody body;
  body.query_id = next_query_++;
  body.server_name = server_name;
  wire::Writer w;
  body.encode(w);
  wire::Envelope env = wire::make_envelope(
      wire::MessageType::kGdsResolve, self_name_, "", next_seq_++,
      std::move(w));
  endpoint_.request(
      body.query_id, std::move(env),
      {.policy = resolve_policy_, .to = gds_node_},
      [cb = std::move(callback)](const wire::Envelope* reply) {
        if (reply == nullptr) {  // deadline: report not-found
          cb(false, "");
          return;
        }
        auto decoded = ResolveReplyBody::decode(reply->body);
        if (!decoded.ok()) {
          cb(false, "");
          return;
        }
        cb(decoded.value().found, decoded.value().owner_gds);
      });
}

bool GdsClient::handle_resolve_reply(const wire::Envelope& env) {
  auto decoded = ResolveReplyBody::decode(env.body);
  if (!decoded.ok()) return false;
  return endpoint_.complete(decoded.value().query_id, env);
}

}  // namespace gsalert::gds
