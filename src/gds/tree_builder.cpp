#include "gds/tree_builder.h"

#include <cassert>

namespace gsalert::gds {

std::vector<GdsServer*> GdsTree::leaves() const {
  // A leaf is a node that is no other node's ancestor-parent; with the
  // builders here, leaves are exactly the maximum-stratum nodes plus any
  // childless inner nodes. We approximate by "no node lists it as parent".
  std::vector<GdsServer*> out;
  for (GdsServer* candidate : nodes) {
    bool has_child = false;
    for (GdsServer* other : nodes) {
      if (other != candidate && other->parent() == candidate->id()) {
        has_child = true;
        break;
      }
    }
    if (!has_child) out.push_back(candidate);
  }
  return out;
}

GdsServer* GdsTree::leaf_for(std::size_t i) const {
  const auto ls = leaves();
  assert(!ls.empty());
  return ls[i % ls.size()];
}

GdsTree build_tree(sim::Network& net, int fanout, int depth,
                   GdsConfig config, const std::string& prefix) {
  assert(fanout >= 1 && depth >= 1);
  GdsTree tree;
  // ancestry[i] = chain from node i's parent up to the root (node indices).
  std::vector<std::vector<std::size_t>> ancestry;
  std::vector<std::size_t> level_start{0};

  int k = 0;
  std::vector<int> level_counts(depth);
  level_counts[0] = 1;
  for (int d = 1; d < depth; ++d) {
    level_counts[d] = level_counts[d - 1] * fanout;
  }
  for (int d = 0; d < depth; ++d) {
    for (int i = 0; i < level_counts[d]; ++i) {
      GdsConfig node_config = config;
      node_config.stratum = static_cast<std::uint16_t>(d + 1);
      auto* node = net.make_node<GdsServer>(
          prefix + "-" + std::to_string(++k), node_config);
      tree.nodes.push_back(node);
      if (d == 0) {
        ancestry.push_back({});
      } else {
        const std::size_t parent_index =
            level_start[d - 1] + static_cast<std::size_t>(i / fanout);
        std::vector<std::size_t> chain{parent_index};
        for (std::size_t a : ancestry[parent_index]) chain.push_back(a);
        ancestry.push_back(std::move(chain));
      }
    }
    if (d + 1 < depth) level_start.push_back(tree.nodes.size());
  }
  // Children of the root fall back to a sibling ring if the root dies:
  // the resulting parent cycle is harmless (broadcast dedup suppresses
  // the redundant path) and keeps the directory connected.
  const std::size_t stratum2_first = 1;
  const std::size_t stratum2_count =
      depth >= 2 ? static_cast<std::size_t>(level_counts[1]) : 0;
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    std::vector<NodeId> ancestors;
    for (std::size_t a : ancestry[i]) {
      ancestors.push_back(tree.nodes[a]->id());
    }
    // Everything in the ancestry chain is a genuine (lower-stratum)
    // ancestor; the sibling appended below is failover-only.
    const std::size_t proper_count = ancestors.size();
    if (stratum2_count > 1 && i >= stratum2_first &&
        i < stratum2_first + stratum2_count) {
      const std::size_t sibling =
          stratum2_first + ((i - stratum2_first + 1) % stratum2_count);
      ancestors.push_back(tree.nodes[sibling]->id());
    }
    tree.nodes[i]->set_ancestors(std::move(ancestors), proper_count);
  }
  return tree;
}

GdsTree build_figure2_tree(sim::Network& net, GdsConfig config) {
  GdsTree tree;
  auto make = [&](int number, std::uint16_t stratum) {
    GdsConfig node_config = config;
    node_config.stratum = stratum;
    return net.make_node<GdsServer>("gds-" + std::to_string(number),
                                    node_config);
  };
  GdsServer* n1 = make(1, 1);
  GdsServer* n2 = make(2, 2);
  GdsServer* n3 = make(3, 3);
  GdsServer* n4 = make(4, 3);
  GdsServer* n5 = make(5, 2);
  GdsServer* n6 = make(6, 3);
  GdsServer* n7 = make(7, 2);
  // Stratum-2 nodes fall back to a sibling ring if the root dies; the
  // sibling entries are failover-only (not adaptive candidates).
  n2->set_ancestors({n1->id(), n5->id()}, /*proper_count=*/1);
  n5->set_ancestors({n1->id(), n7->id()}, /*proper_count=*/1);
  n7->set_ancestors({n1->id(), n2->id()}, /*proper_count=*/1);
  n3->set_ancestors({n2->id(), n1->id()}, /*proper_count=*/2);
  n4->set_ancestors({n2->id(), n1->id()}, /*proper_count=*/2);
  n6->set_ancestors({n5->id(), n1->id()}, /*proper_count=*/2);
  tree.nodes = {n1, n2, n3, n4, n5, n6, n7};
  return tree;
}

}  // namespace gsalert::gds
