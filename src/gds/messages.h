// Payload structs for the GDS protocol (paper §4.1, §6). Envelope types
// are in wire/message_types.h; these are the bodies.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "wire/codec.h"

namespace gsalert::gds {

/// GS server -> its GDS node: register under a network-internal name.
struct RegisterBody {
  std::string server_name;

  void encode(wire::Writer& w) const;
  static Result<RegisterBody> decode(std::span<const std::byte> body);
};

/// Broadcast payload flooded through the tree. The (origin_server, seq)
/// pair is the duplicate-suppression key; payload_type tags the inner
/// message so receivers can dispatch without the GDS understanding it
/// (the GDS is an anonymous forwarding network).
struct BroadcastBody {
  std::string origin_server;
  std::uint64_t seq = 0;
  std::uint16_t payload_type = 0;
  std::vector<std::byte> payload;

  void encode(wire::Writer& w) const;
  /// Exact encoded size (for Writer::reserve).
  std::size_t wire_size() const;
  static Result<BroadcastBody> decode(std::span<const std::byte> body);
};

/// Zero-copy view of an encoded BroadcastBody: the routing fields are
/// decoded, the payload stays a span into the input buffer (valid only
/// while that buffer lives). The payload is the final field, so a hop can
/// read the dedup key and hand the payload onward without copying it.
struct BroadcastView {
  std::string origin_server;
  std::uint64_t seq = 0;
  std::uint16_t payload_type = 0;
  std::span<const std::byte> payload;

  static Result<BroadcastView> peek(std::span<const std::byte> body);
};

/// Point-to-point message routed through the tree by name.
struct RelayBody {
  std::string origin_server;
  std::string dst_server;
  std::uint16_t payload_type = 0;
  std::vector<std::byte> payload;

  void encode(wire::Writer& w) const;
  static Result<RelayBody> decode(std::span<const std::byte> body);
};

/// Multicast to an explicit set of server names. Forwarders split the
/// target list per next hop, so each tree edge carries the payload once.
struct MulticastBody {
  std::string origin_server;
  std::uint64_t seq = 0;
  std::vector<std::string> targets;
  std::uint16_t payload_type = 0;
  std::vector<std::byte> payload;

  void encode(wire::Writer& w) const;
  /// Encode without materializing a MulticastBody: forwarders split the
  /// target list per next hop and re-encode straight from the decoded
  /// fields, copying the payload once into each edge's buffer and never
  /// into an intermediate struct.
  static void encode_fields(wire::Writer& w, const std::string& origin,
                            std::uint64_t seq,
                            const std::vector<std::string>& targets,
                            std::uint16_t payload_type,
                            std::span<const std::byte> payload);
  static Result<MulticastBody> decode(std::span<const std::byte> body);
};

/// Name lookup (the DNS-like naming service).
struct ResolveBody {
  std::uint64_t query_id = 0;
  std::string server_name;

  void encode(wire::Writer& w) const;
  static Result<ResolveBody> decode(std::span<const std::byte> body);
};

struct ResolveReplyBody {
  std::uint64_t query_id = 0;
  std::string server_name;
  bool found = false;
  std::string owner_gds;  // name of the GDS node holding the registration

  void encode(wire::Writer& w) const;
  static Result<ResolveReplyBody> decode(std::span<const std::byte> body);
};

/// Child GDS node -> parent: announce itself and advertise subtree names.
/// Sent with full=true on (re)connect carrying the whole subtree name set;
/// incremental updates use full=false with adds/removes deltas.
struct ChildHelloBody {
  std::uint16_t stratum = 0;
  bool full = false;
  std::vector<std::string> adds;
  std::vector<std::string> removes;

  void encode(wire::Writer& w) const;
  static Result<ChildHelloBody> decode(std::span<const std::byte> body);
};

}  // namespace gsalert::gds
