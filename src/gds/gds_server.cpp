#include "gds/gds_server.h"

#include <algorithm>
#include <utility>

#include "common/log.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace gsalert::gds {

namespace {
constexpr std::uint64_t kHeartbeatTimer = 1;

// Journal record types (payloads in the comments; snapshot is type 255).
constexpr std::uint8_t kJRegister = 1;     // server str, node u32
constexpr std::uint8_t kJUnregister = 2;   // server str
constexpr std::uint8_t kJRouteAdd = 3;     // name str, via u32
constexpr std::uint8_t kJRouteRemove = 4;  // name str
constexpr std::uint8_t kJChildUp = 5;      // node u32
constexpr std::uint8_t kJChildDown = 6;    // node u32
constexpr std::uint8_t kJAdopt = 7;        // parent u32
constexpr std::uint8_t kJSeen = 8;         // origin str, seq u64
constexpr std::uint8_t kJPark = 9;         // order u64, key str, expires i64, env bytes
constexpr std::uint8_t kJUnpark = 10;      // order u64
constexpr std::uint8_t kJParentSelect = 11;  // parent u32 (failover/adaptive)
constexpr std::uint8_t kSnapshotVersion = 2;
// Envelope msg-ids restart past a generous gap after recovery so ids
// minted before the crash are never reused (snapshots lag the live
// counter by up to one compaction interval).
constexpr std::uint64_t kMsgIdStride = 1ULL << 20;

std::size_t str_wire(const std::string& s) { return 4 + s.size(); }

std::string resolve_key(const std::string& origin, std::uint64_t query_id) {
  return origin + "#" + std::to_string(query_id);
}
}  // namespace

void GdsServer::set_ancestors(std::vector<NodeId> ancestors,
                              std::size_t proper_count) {
  ancestors_ = std::move(ancestors);
  config_ancestors_ = ancestors_;
  proper_count = std::min(proper_count, ancestors_.size());
  proper_ancestors_.assign(ancestors_.begin(),
                           ancestors_.begin() +
                               static_cast<std::ptrdiff_t>(proper_count));
  config_proper_ancestors_ = proper_ancestors_;
  ancestor_index_ = 0;
  parent_ = ancestors_.empty() ? NodeId::invalid() : ancestors_.front();
}

void GdsServer::apply_adopt_ancestors(NodeId new_parent) {
  std::vector<NodeId> ancestors{new_parent};
  for (NodeId old : ancestors_) {
    if (old != new_parent) ancestors.push_back(old);
  }
  ancestors_ = std::move(ancestors);
  // An adopted parent sits above us by construction: stratum-safe.
  if (std::find(proper_ancestors_.begin(), proper_ancestors_.end(),
                new_parent) == proper_ancestors_.end()) {
    proper_ancestors_.insert(proper_ancestors_.begin(), new_parent);
  }
  ancestor_index_ = 0;
  parent_ = new_parent;
  heartbeat_misses_ = 0;
  heartbeat_outstanding_ = false;
}

void GdsServer::apply_parent_select(NodeId new_parent) {
  const auto it = std::find(ancestors_.begin(), ancestors_.end(), new_parent);
  if (it == ancestors_.end()) return;
  ancestor_index_ = static_cast<std::size_t>(it - ancestors_.begin());
  parent_ = new_parent;
  heartbeat_misses_ = 0;
  heartbeat_outstanding_ = false;
}

void GdsServer::adopt_parent(NodeId new_parent) {
  apply_adopt_ancestors(new_parent);
  journal_append(kJAdopt, 4,
                 [&](wire::Writer& w) { w.u32(new_parent.value()); });
  send_child_hello(/*full=*/true, subtree_names(), {});
  flush_all_parked();
  commit_journal();
}

void GdsServer::on_start() {
  ensure_journal();
  if (parent_.valid()) {
    send_child_hello(/*full=*/true, subtree_names(), {});
  }
  network().set_timer(id(), config_.heartbeat_interval, kHeartbeatTimer);
  commit_journal();
}

void GdsServer::clear_state(bool reset_ancestors_to_config) {
  local_servers_.clear();
  name_routes_.clear();
  children_.clear();
  seen_.clear();
  resolve_backpaths_.clear();
  parked_.clear();
  heartbeat_misses_ = 0;
  heartbeat_outstanding_ = false;
  ancestor_index_ = 0;
  // RTT estimates are soft state: re-measured after recovery.
  rtt_outstanding_.clear();
  rtt_.clear();
  if (reset_ancestors_to_config) {
    ancestors_ = config_ancestors_;
    proper_ancestors_ = config_proper_ancestors_;
  }
  parent_ = ancestors_.empty() ? NodeId::invalid() : ancestors_.front();
}

void GdsServer::on_recover() {
  if (config_.durable) {
    // Wipe memory, reopen the journal and replay: registrations, routes,
    // children, dedup state and parked custody all come back from disk.
    clear_state(/*reset_ancestors_to_config=*/true);
    journal_.reset();
    ensure_journal();
  } else {
    // Legacy amnesia (pre-journal semantics, kept as an ablation): the
    // node rejoins the tree empty and GS servers re-register.
    clear_state(/*reset_ancestors_to_config=*/false);
  }
}

void GdsServer::on_rejoin() { on_start(); }

void GdsServer::send_envelope(NodeId to, const wire::Envelope& env) {
  network().send(id(), to, env.pack());
}

void GdsServer::on_packet(NodeId from, const sim::Packet& packet) {
  auto decoded = wire::unpack(packet);
  if (!decoded.ok()) {
    logf(LogLevel::kWarn, network().now(), name(),
         "dropping malformed packet from node ", from.value());
    return;
  }
  wire::Envelope env = std::move(decoded).take();
  // All handlers run under the incoming message's trace context, so any
  // envelope they mint (acks, delivers, forwards) joins the same trace.
  const obs::TraceScope trace_scope{
      obs::TraceContext{env.trace_id, env.span_id, env.hop}};
  switch (env.type) {
    case wire::MessageType::kGdsRegister:
      handle_register(from, env);
      break;
    case wire::MessageType::kGdsUnregister:
      handle_unregister(env);
      break;
    case wire::MessageType::kGdsChildHello:
      handle_child_hello(from, env);
      break;
    case wire::MessageType::kGdsHeartbeat:
      handle_heartbeat(from, env);
      break;
    case wire::MessageType::kGdsHeartbeatAck:
      handle_heartbeat_ack(from, env);
      break;
    case wire::MessageType::kGdsRttProbe:
      handle_rtt_probe(from, env);
      break;
    case wire::MessageType::kGdsRttProbeAck:
      handle_rtt_probe_ack(from, env);
      break;
    case wire::MessageType::kGdsBroadcast:
      handle_broadcast(from, env);
      break;
    case wire::MessageType::kGdsRelay:
      handle_relay(from, std::move(env));
      break;
    case wire::MessageType::kGdsMulticast:
      handle_multicast(from, env);
      break;
    case wire::MessageType::kGdsResolve:
      handle_resolve(from, env);
      break;
    case wire::MessageType::kGdsResolveReply:
      handle_resolve_reply(from, env);
      break;
    default:
      logf(LogLevel::kWarn, network().now(), name(),
           "unexpected message type ",
           static_cast<unsigned>(env.type));
  }
  // Group commit: one fsync per handled packet, however many records the
  // handlers above appended. Crashes only happen between sim events, so
  // this is the durability boundary.
  commit_journal();
}

void GdsServer::on_timer(std::uint64_t token) {
  if (token != kHeartbeatTimer) return;
  if (parent_.valid()) {
    if (heartbeat_outstanding_) {
      ++heartbeat_misses_;
      if (heartbeat_misses_ >= config_.heartbeat_miss_limit) reparent();
    }
    const std::uint64_t hb_id = next_msg_id_++;
    wire::Envelope hb = wire::make_envelope(
        wire::MessageType::kGdsHeartbeat, name(), "", hb_id, wire::Writer{});
    send_envelope(parent_, hb);
    heartbeat_outstanding_ = true;
    // The heartbeat doubles as the parent's RTT probe: the ack echoes our
    // msg id, so the parent's round trip costs no extra traffic.
    if (config_.adaptive_parent) {
      rtt_outstanding_[parent_] = RttProbe{hb_id, network().now()};
    }
  }
  if (config_.adaptive_parent && !adaptive_frozen_) {
    probe_ancestor_rtt();
    maybe_adaptive_reparent();
  }
  prune_dead_children();
  const std::uint64_t expired_before = parked_.stats().expired;
  parked_.expire(network().now());
  if (obs::active() && parked_.stats().expired > expired_before) {
    obs::emit_span("gds-park-expired", name(), network().now(),
                   {{"count", std::to_string(parked_.stats().expired -
                                             expired_before)}});
  }
  network().set_timer(id(), config_.heartbeat_interval, kHeartbeatTimer);
  commit_journal();
}

// --- registration ----------------------------------------------------------

void GdsServer::handle_register(NodeId from, const wire::Envelope& env) {
  auto body = RegisterBody::decode(env.body);
  if (!body.ok()) return;
  const std::string& server = body.value().server_name;
  const auto existing = local_servers_.find(server);
  const bool is_new = existing == local_servers_.end();
  const bool changed = is_new || existing->second != from;
  local_servers_[server] = from;
  name_routes_[server] = Route{.local = true, .via = NodeId::invalid()};
  if (changed) {
    journal_append(kJRegister, str_wire(server) + 4, [&](wire::Writer& w) {
      w.str(server);
      w.u32(from.value());
    });
  }
  if (is_new) advertise_up({server}, {});
  wire::Envelope ack = wire::make_envelope(
      wire::MessageType::kGdsRegisterAck, name(), server, env.msg_id,
      wire::Writer{});
  send_envelope(from, ack);
  // The name just became routable: hand over anything parked for it.
  flush_parked(server);
}

void GdsServer::handle_unregister(const wire::Envelope& env) {
  auto body = RegisterBody::decode(env.body);
  if (!body.ok()) return;
  const std::string& server = body.value().server_name;
  if (local_servers_.erase(server) > 0) {
    name_routes_.erase(server);
    journal_append(kJUnregister, str_wire(server),
                   [&](wire::Writer& w) { w.str(server); });
    advertise_up({}, {server});
  }
}

void GdsServer::handle_child_hello(NodeId from, const wire::Envelope& env) {
  auto decoded = ChildHelloBody::decode(env.body);
  if (!decoded.ok()) return;
  const ChildHelloBody& body = decoded.value();
  const auto [child_it, child_new] =
      children_.insert_or_assign(from, network().now());
  (void)child_it;
  if (child_new) {
    journal_append(kJChildUp, 4,
                   [&](wire::Writer& w) { w.u32(from.value()); });
  }

  std::vector<std::string> new_adds;
  std::vector<std::string> new_removes;
  if (body.full) {
    // Drop everything previously routed via this child, then re-learn.
    for (auto it = name_routes_.begin(); it != name_routes_.end();) {
      if (!it->second.local && it->second.via == from) {
        journal_append(kJRouteRemove, str_wire(it->first),
                       [&](wire::Writer& w) { w.str(it->first); });
        new_removes.push_back(it->first);
        it = name_routes_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& name_added : body.adds) {
    auto [it, inserted] = name_routes_.try_emplace(
        name_added, Route{.local = false, .via = from});
    bool route_set = inserted;
    if (!inserted) {
      // Never clobber a local registration: with sibling-ring fallback
      // parents, advertisements can travel a cycle and come back to us.
      if (!it->second.local) {
        route_set = it->second.via != from;
        it->second = Route{.local = false, .via = from};
      }
    } else {
      new_adds.push_back(name_added);
    }
    if (route_set) {
      journal_append(kJRouteAdd, str_wire(name_added) + 4,
                     [&](wire::Writer& w) {
                       w.str(name_added);
                       w.u32(from.value());
                     });
    }
    // If this name was just re-added after a full reset, cancel the remove.
    std::erase(new_removes, name_added);
  }
  for (const auto& name_removed : body.removes) {
    const auto it = name_routes_.find(name_removed);
    if (it != name_routes_.end() && !it->second.local &&
        it->second.via == from) {
      name_routes_.erase(it);
      journal_append(kJRouteRemove, str_wire(name_removed),
                     [&](wire::Writer& w) { w.str(name_removed); });
      new_removes.push_back(name_removed);
    }
  }
  if (!new_adds.empty() || !new_removes.empty()) {
    advertise_up(std::move(new_adds), std::move(new_removes));
  }
  for (const auto& name_added : body.adds) flush_parked(name_added);
}

void GdsServer::handle_heartbeat(NodeId from, const wire::Envelope& env) {
  // A heartbeat only ever comes from a node that has us as its parent, so
  // it doubles as child liveness — including children we forgot across a
  // restart (their routes return with the next periodic full hello). A
  // stale entry from a child that re-parented away ages out in the prune.
  const auto [hb_it, hb_new] = children_.insert_or_assign(from, network().now());
  (void)hb_it;
  if (hb_new) {
    journal_append(kJChildUp, 4,
                   [&](wire::Writer& w) { w.u32(from.value()); });
  }
  wire::Envelope ack = wire::make_envelope(
      wire::MessageType::kGdsHeartbeatAck, name(), env.src, env.msg_id,
      wire::Writer{});
  send_envelope(from, ack);
}

void GdsServer::handle_heartbeat_ack(NodeId from, const wire::Envelope& env) {
  // Any ack closes a pending round trip (a stale parent's RTT is still a
  // valid measurement of that link).
  if (config_.adaptive_parent) record_rtt_sample(from, env.msg_id);
  if (from != parent_) return;  // stale ack from a previous parent
  heartbeat_misses_ = 0;
  heartbeat_outstanding_ = false;
}

void GdsServer::handle_rtt_probe(NodeId from, const wire::Envelope& env) {
  // Stateless echo: probing a candidate parent must not create child
  // state there (a heartbeat would — it doubles as child liveness).
  wire::Envelope ack = wire::make_envelope(
      wire::MessageType::kGdsRttProbeAck, name(), env.src, env.msg_id,
      wire::Writer{});
  send_envelope(from, ack);
}

void GdsServer::handle_rtt_probe_ack(NodeId from, const wire::Envelope& env) {
  if (config_.adaptive_parent) record_rtt_sample(from, env.msg_id);
}

void GdsServer::record_rtt_sample(NodeId from, std::uint64_t msg_id) {
  const auto it = rtt_outstanding_.find(from);
  if (it == rtt_outstanding_.end() || it->second.msg_id != msg_id) return;
  const double sample = static_cast<double>(
      (network().now() - it->second.sent_at).as_micros());
  rtt_outstanding_.erase(it);
  auto& est = rtt_[from];
  est.ewma_micros =
      est.samples == 0
          ? sample
          : config_.rtt_ewma_alpha * sample +
                (1.0 - config_.rtt_ewma_alpha) * est.ewma_micros;
  est.samples += 1;
  stats_.rtt_samples += 1;
}

double GdsServer::rtt_ewma_micros(NodeId node) const {
  const auto it = rtt_.find(node);
  return it == rtt_.end() ? -1.0 : it->second.ewma_micros;
}

void GdsServer::probe_ancestor_rtt() {
  if (config_.rtt_probe_every <= 0) return;
  if (++rtt_probe_tick_ %
          static_cast<std::uint64_t>(config_.rtt_probe_every) !=
      0) {
    return;
  }
  std::vector<NodeId> candidates;
  for (const NodeId a : proper_ancestors_) {
    if (a != parent_) candidates.push_back(a);
  }
  if (candidates.empty()) return;
  const NodeId target = candidates[rtt_probe_rr_++ % candidates.size()];
  const std::uint64_t probe_id = next_msg_id_++;
  wire::Envelope probe = wire::make_envelope(
      wire::MessageType::kGdsRttProbe, name(), "", probe_id, wire::Writer{});
  send_envelope(target, probe);
  // One outstanding probe per target: a new probe supersedes a lost one.
  rtt_outstanding_[target] = RttProbe{probe_id, network().now()};
  stats_.rtt_probes_sent += 1;
}

void GdsServer::maybe_adaptive_reparent() {
  if (!parent_.valid() || proper_ancestors_.size() < 2) return;
  const SimTime now = network().now();
  if (now - last_adaptive_reparent_ < config_.reparent_min_interval) return;
  const auto parent_est = rtt_.find(parent_);
  if (parent_est == rtt_.end() ||
      parent_est->second.samples <
          static_cast<std::uint64_t>(config_.rtt_min_samples)) {
    return;
  }
  const double parent_ewma = parent_est->second.ewma_micros;
  NodeId best = NodeId::invalid();
  double best_ewma = parent_ewma * (1.0 - config_.reparent_improvement);
  for (const NodeId cand : proper_ancestors_) {
    if (cand == parent_) continue;
    if (std::find(ancestors_.begin(), ancestors_.end(), cand) ==
        ancestors_.end()) {
      continue;  // not currently in the failover ring (defensive)
    }
    const auto est = rtt_.find(cand);
    if (est == rtt_.end() ||
        est->second.samples <
            static_cast<std::uint64_t>(config_.rtt_min_samples)) {
      continue;
    }
    if (est->second.ewma_micros < best_ewma) {
      best_ewma = est->second.ewma_micros;
      best = cand;
    }
  }
  if (!best.valid()) return;
  apply_parent_select(best);
  last_adaptive_reparent_ = now;
  stats_.adaptive_reparents += 1;
  journal_append(kJParentSelect, 4,
                 [&](wire::Writer& w) { w.u32(best.value()); });
  logf(LogLevel::kInfo, network().now(), name(),
       "adaptive re-parent to node ", best.value(), " (rtt ",
       static_cast<std::uint64_t>(best_ewma), "us vs ",
       static_cast<std::uint64_t>(parent_ewma), "us)");
  send_child_hello(/*full=*/true, subtree_names(), {});
  flush_all_parked();
}

void GdsServer::reparent() {
  if (ancestors_.size() <= 1) {
    // No fallback: operate headless (our subtree keeps working).
    heartbeat_misses_ = 0;
    heartbeat_outstanding_ = false;
    return;
  }
  ancestor_index_ = (ancestor_index_ + 1) % ancestors_.size();
  parent_ = ancestors_[ancestor_index_];
  heartbeat_misses_ = 0;
  heartbeat_outstanding_ = false;
  stats_.reparents += 1;
  journal_append(kJParentSelect, 4,
                 [&](wire::Writer& w) { w.u32(parent_.value()); });
  logf(LogLevel::kInfo, network().now(), name(), "re-parenting to node ",
       parent_.value());
  send_child_hello(/*full=*/true, subtree_names(), {});
  // The new parent may route names we could not: retry parked relays.
  flush_all_parked();
}

void GdsServer::prune_dead_children() {
  const SimTime cutoff_age =
      config_.heartbeat_interval * (config_.heartbeat_miss_limit + 1);
  const SimTime now = network().now();
  std::vector<std::string> removed_names;
  for (auto it = children_.begin(); it != children_.end();) {
    if (now - it->second > cutoff_age) {
      const NodeId dead = it->first;
      for (auto rit = name_routes_.begin(); rit != name_routes_.end();) {
        if (!rit->second.local && rit->second.via == dead) {
          journal_append(kJRouteRemove, str_wire(rit->first),
                         [&](wire::Writer& w) { w.str(rit->first); });
          removed_names.push_back(rit->first);
          rit = name_routes_.erase(rit);
        } else {
          ++rit;
        }
      }
      journal_append(kJChildDown, 4,
                     [&](wire::Writer& w) { w.u32(dead.value()); });
      it = children_.erase(it);
    } else {
      ++it;
    }
  }
  if (!removed_names.empty()) advertise_up({}, std::move(removed_names));
}

std::vector<std::string> GdsServer::subtree_names() const {
  std::vector<std::string> names;
  names.reserve(name_routes_.size());
  for (const auto& [n, route] : name_routes_) names.push_back(n);
  return names;
}

void GdsServer::send_child_hello(bool full, std::vector<std::string> adds,
                                 std::vector<std::string> removes) {
  if (!parent_.valid()) return;
  ChildHelloBody body;
  body.stratum = config_.stratum;
  body.full = full;
  body.adds = std::move(adds);
  body.removes = std::move(removes);
  wire::Writer w;
  body.encode(w);
  wire::Envelope env = wire::make_envelope(
      wire::MessageType::kGdsChildHello, name(), "", next_msg_id_++,
      std::move(w));
  send_envelope(parent_, env);
}

void GdsServer::advertise_up(std::vector<std::string> adds,
                             std::vector<std::string> removes) {
  send_child_hello(/*full=*/false, std::move(adds), std::move(removes));
}

// --- broadcast -----------------------------------------------------------

bool GdsServer::is_duplicate(const std::string& origin, std::uint64_t seq) {
  if (!config_.dedup_enabled) return false;
  const bool fresh = seen_[origin].insert(seq).second;
  if (fresh) {
    journal_append(kJSeen, str_wire(origin) + 8, [&](wire::Writer& w) {
      w.str(origin);
      w.u64(seq);
    });
  }
  return !fresh;
}

void GdsServer::deliver_frame(NodeId server, wire::Frame body_frame) {
  wire::Envelope env = wire::make_envelope(
      wire::MessageType::kGdsDeliver, name(), "", next_msg_id_++,
      std::move(body_frame));
  send_envelope(server, env);
  stats_.deliveries += 1;
}

void GdsServer::deliver(NodeId server, const BroadcastBody& body) {
  wire::Writer w;
  w.reserve(body.wire_size());
  body.encode(w);
  deliver_frame(server, wire::Frame{std::move(w).take()});
}

void GdsServer::handle_broadcast(NodeId from, const wire::Envelope& env) {
  GSALERT_PROFILE("gds.handle_broadcast");
  // Peek the routing fields only — the payload stays inside the shared
  // body frame and is never copied on this path.
  auto peeked = BroadcastView::peek(env.body);
  if (!peeked.ok()) return;
  const BroadcastView& body = peeked.value();
  stats_.broadcasts_seen += 1;
  if (is_duplicate(body.origin_server, body.seq)) {
    stats_.duplicates_suppressed += 1;
    if (obs::active()) {
      obs::emit_span("gds-dup-drop", name(), network().now(),
                     {{"origin", body.origin_server},
                      {"seq", std::to_string(body.seq)}});
    }
    return;
  }
  if (env.ttl == 0) {
    if (obs::active()) {
      obs::emit_span("gds-ttl-drop", name(), network().now(),
                     {{"origin", body.origin_server},
                      {"seq", std::to_string(body.seq)}});
    }
    return;
  }

  const obs::TraceScope span_scope{
      obs::active()
          ? obs::emit_span("gds-broadcast", name(), network().now(),
                           {{"origin", body.origin_server},
                            {"seq", std::to_string(body.seq)}})
          : obs::current_context()};

  // Deliver to locally registered servers (never echo back to the
  // origin). A kGdsDeliver body is exactly the BroadcastBody bytes, so
  // every local delivery aliases the incoming frame.
  for (const auto& [server_name, node] : local_servers_) {
    if (server_name == body.origin_server) continue;
    if (delivery_observer_) {
      delivery_observer_(server_name, body.origin_server, body.seq);
    }
    const obs::TraceScope deliver_scope{
        obs::active()
            ? obs::emit_span("gds-deliver", name(), network().now(),
                             {{"dst", server_name}})
            : obs::current_context()};
    deliver_frame(node, env.body);
  }
  // Forward upwards and downwards, skipping the edge it arrived on: the
  // body frame is shared verbatim and the ~50-byte header is encoded
  // once, then copied per destination. Restamp the trace context one hop
  // past the gds-broadcast span rather than the upstream sender's.
  wire::Envelope forward = env;  // cheap: strings + a frame refcount
  forward.src = name();
  forward.ttl = static_cast<std::uint16_t>(env.ttl - 1);
  const obs::TraceContext forward_ctx = obs::current_context();
  forward.trace_id = forward_ctx.trace_id;
  forward.span_id = forward_ctx.span_id;
  forward.hop = static_cast<std::uint16_t>(forward_ctx.hop + 1);
  const sim::Packet packed = forward.pack();
  if (parent_.valid() && parent_ != from) {
    network().send(id(), parent_, packed);
  }
  for (const auto& [child, last_seen] : children_) {
    if (child != from) network().send(id(), child, packed);
  }
}

// --- relay / multicast -------------------------------------------------------

void GdsServer::handle_relay(NodeId from, wire::Envelope env) {
  auto decoded = RelayBody::decode(env.body);
  if (!decoded.ok()) return;
  RelayBody body = std::move(decoded).take();
  if (env.ttl == 0) {
    stats_.unroutable += 1;
    if (obs::active()) {
      obs::emit_span("gds-unroutable", name(), network().now(),
                     {{"dst", body.dst_server}});
    }
    return;
  }
  const obs::TraceScope relay_scope{
      obs::active()
          ? obs::emit_span("gds-relay", name(), network().now(),
                           {{"dst", body.dst_server}})
          : obs::current_context()};
  route_relay(from, std::move(env), std::move(body),
              network().now() + config_.park_ttl);
}

void GdsServer::route_relay(NodeId from, wire::Envelope env, RelayBody body,
                            SimTime park_expiry) {
  const auto route = name_routes_.find(body.dst_server);
  if (route != name_routes_.end() && route->second.local) {
    const auto server = local_servers_.find(body.dst_server);
    if (server != local_servers_.end()) {
      BroadcastBody inner;
      inner.origin_server = std::move(body.origin_server);
      inner.seq = 0;
      inner.payload_type = body.payload_type;
      inner.payload = std::move(body.payload);
      deliver(server->second, inner);
      stats_.relays_routed += 1;
    }
    return;
  }
  if (env.ttl == 0) {  // exhausted by repeated park/flush hops
    stats_.unroutable += 1;
    if (obs::active()) {
      obs::emit_span("gds-unroutable", name(), network().now(),
                     {{"dst", body.dst_server}});
    }
    return;
  }
  env.src = name();
  env.ttl -= 1;
  // Forwarded bytes are reused: restamp the context past the relay span.
  const obs::TraceContext relay_ctx = obs::current_context();
  env.trace_id = relay_ctx.trace_id;
  env.span_id = relay_ctx.span_id;
  env.hop = static_cast<std::uint16_t>(relay_ctx.hop + 1);
  if (route != name_routes_.end()) {
    send_envelope(route->second.via, env);
    stats_.relays_routed += 1;
  } else if (parent_.valid() && parent_ != from) {
    send_envelope(parent_, env);
    stats_.relays_routed += 1;
  } else {
    // No route and nowhere to forward: store-and-forward custody (paper
    // §4.1) instead of the old silent drop. Still counted unroutable —
    // the target is unknown *now*; the park is the second chance.
    stats_.unroutable += 1;
    if (obs::active()) {
      obs::emit_span("gds-park", name(), network().now(),
                     {{"dst", body.dst_server},
                      {"depth", std::to_string(parked_.size() + 1)}});
    }
    // Flatten for the journal before custody moves the envelope; the
    // eviction hook may journal unparks inside park_until, so append the
    // park record after it to keep the log causally ordered.
    std::vector<std::byte> flat;
    if (journal_ && config_.park_capacity > 0) flat = env.flatten();
    const std::uint64_t order = parked_.park_until(
        body.dst_server, std::move(env), park_expiry, network().now());
    if (journal_ && config_.park_capacity > 0) {
      journal_append(
          kJPark, 8 + str_wire(body.dst_server) + 8 + 4 + flat.size(),
          [&](wire::Writer& w) {
            w.u64(order);
            w.str(body.dst_server);
            w.i64(park_expiry.as_micros());
            w.bytes(flat);
          });
    }
  }
}

void GdsServer::flush_parked(const std::string& dst) {
  if (!parked_.has(dst)) return;
  for (auto& entry : parked_.take(dst, network().now())) {
    journal_append(kJUnpark, 8,
                   [&](wire::Writer& w) { w.u64(entry.order); });
    auto decoded = RelayBody::decode(entry.env.body);
    if (!decoded.ok()) continue;
    // Re-enter routing under a flush span chained to the parked
    // envelope's own trace, so causal traces show park -> flush -> hop.
    const obs::TraceScope scope{
        obs::active()
            ? obs::emit_span_under(
                  obs::TraceContext{entry.env.trace_id, entry.env.span_id,
                                    entry.env.hop},
                  "gds-park-flush", name(), network().now(),
                  {{"dst", dst},
                   {"dwell_ms",
                    std::to_string((network().now() - entry.parked_at)
                                       .as_millis())}})
            : obs::TraceContext{entry.env.trace_id, entry.env.span_id,
                                entry.env.hop}};
    route_relay(NodeId::invalid(), std::move(entry.env),
                std::move(decoded).take(), entry.expires_at);
  }
}

void GdsServer::flush_all_parked() {
  for (auto& entry : parked_.take_all(network().now())) {
    journal_append(kJUnpark, 8,
                   [&](wire::Writer& w) { w.u64(entry.order); });
    auto decoded = RelayBody::decode(entry.env.body);
    if (!decoded.ok()) continue;
    RelayBody body = std::move(decoded).take();
    const obs::TraceScope scope{
        obs::active()
            ? obs::emit_span_under(
                  obs::TraceContext{entry.env.trace_id, entry.env.span_id,
                                    entry.env.hop},
                  "gds-park-flush", name(), network().now(),
                  {{"dst", body.dst_server},
                   {"dwell_ms",
                    std::to_string((network().now() - entry.parked_at)
                                       .as_millis())}})
            : obs::TraceContext{entry.env.trace_id, entry.env.span_id,
                                entry.env.hop}};
    route_relay(NodeId::invalid(), std::move(entry.env), std::move(body),
                entry.expires_at);
  }
}

void GdsServer::handle_multicast(NodeId from, const wire::Envelope& env) {
  // Like broadcast, the payload is viewed in place: local deliveries share
  // one lazily-encoded frame, and per-edge forwards re-encode straight
  // from the view (each edge's target list differs, so the payload is
  // copied exactly once per edge and never into intermediate structs).
  auto decoded = MulticastBody::decode(env.body);
  if (!decoded.ok()) return;
  const MulticastBody& body = decoded.value();
  if (env.ttl == 0) return;

  const obs::TraceScope multicast_scope{
      obs::active()
          ? obs::emit_span("gds-multicast", name(), network().now(),
                           {{"origin", body.origin_server},
                            {"targets", std::to_string(body.targets.size())}})
          : obs::current_context()};

  std::vector<std::string> to_parent;
  std::unordered_map<NodeId, std::vector<std::string>> per_child;
  // All local targets receive the same inner BroadcastBody, so it is
  // encoded at most once and the frame shared across deliveries.
  wire::Frame local_frame;
  for (const auto& target : body.targets) {
    const auto route = name_routes_.find(target);
    if (route != name_routes_.end() && route->second.local) {
      const auto server = local_servers_.find(target);
      if (server != local_servers_.end()) {
        if (local_frame.empty()) {
          BroadcastBody inner;
          inner.origin_server = body.origin_server;
          inner.seq = body.seq;
          inner.payload_type = body.payload_type;
          inner.payload = body.payload;
          wire::Writer w;
          w.reserve(inner.wire_size());
          inner.encode(w);
          local_frame = wire::Frame{std::move(w).take()};
        }
        deliver_frame(server->second, local_frame);
      }
    } else if (route != name_routes_.end()) {
      per_child[route->second.via].push_back(target);
    } else if (parent_.valid() && parent_ != from) {
      to_parent.push_back(target);
    } else {
      stats_.unroutable += 1;
    }
  }
  auto forward_to = [&](NodeId hop, const std::vector<std::string>& targets) {
    wire::Writer w;
    MulticastBody::encode_fields(w, body.origin_server, body.seq, targets,
                                 body.payload_type, body.payload);
    wire::Envelope fwd = wire::make_envelope(
        wire::MessageType::kGdsMulticast, name(), "", next_msg_id_++,
        std::move(w));
    fwd.ttl = static_cast<std::uint16_t>(env.ttl - 1);
    send_envelope(hop, fwd);
  };
  for (const auto& [child, targets] : per_child) {
    forward_to(child, targets);
  }
  if (!to_parent.empty()) forward_to(parent_, to_parent);
}

// --- naming -----------------------------------------------------------------

void GdsServer::handle_resolve(NodeId from, const wire::Envelope& env) {
  auto decoded = ResolveBody::decode(env.body);
  if (!decoded.ok()) return;
  const ResolveBody& body = decoded.value();
  const std::string key = resolve_key(env.src, body.query_id);

  auto reply_with = [&](NodeId to, bool found) {
    ResolveReplyBody reply;
    reply.query_id = body.query_id;
    reply.server_name = body.server_name;
    reply.found = found;
    reply.owner_gds = found ? name() : "";
    wire::Writer w;
    reply.encode(w);
    wire::Envelope out = wire::make_envelope(
        wire::MessageType::kGdsResolveReply, name(), env.src,
        next_msg_id_++, std::move(w));
    send_envelope(to, out);
  };

  const auto route = name_routes_.find(body.server_name);
  if (route != name_routes_.end() && route->second.local) {
    reply_with(from, true);
    return;
  }
  if (env.ttl == 0) {
    reply_with(from, false);
    return;
  }
  NodeId next;
  if (route != name_routes_.end()) {
    next = route->second.via;
  } else if (parent_.valid() && parent_ != from) {
    next = parent_;
  } else {
    reply_with(from, false);
    return;
  }
  resolve_backpaths_[key] = from;
  wire::Envelope fwd = env;
  fwd.ttl -= 1;
  send_envelope(next, fwd);
}

void GdsServer::handle_resolve_reply(NodeId /*from*/,
                                     const wire::Envelope& env) {
  auto decoded = ResolveReplyBody::decode(env.body);
  if (!decoded.ok()) return;
  const std::string key = resolve_key(env.dst, decoded.value().query_id);
  const auto it = resolve_backpaths_.find(key);
  if (it == resolve_backpaths_.end()) return;  // not ours / already answered
  const NodeId back = it->second;
  resolve_backpaths_.erase(it);
  send_envelope(back, env);
}

bool GdsServer::knows_name(const std::string& name_queried) const {
  return name_routes_.contains(name_queried);
}

std::vector<std::string> GdsServer::registered_names() const {
  std::vector<std::string> names;
  names.reserve(local_servers_.size());
  for (const auto& [server, node] : local_servers_) names.push_back(server);
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> GdsServer::broadcast_seen_keys() const {
  std::vector<std::string> keys;
  for (const auto& [origin, seqs] : seen_) {
    for (const std::uint64_t seq : seqs) {
      keys.push_back(origin + "#" + std::to_string(seq));
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// --- durability --------------------------------------------------------------

void GdsServer::ensure_journal() {
  if (!config_.durable || journal_) return;
  journal_ = std::make_unique<journal::Journal>(
      network().storage(id()), "gds", name(), config_.journal);
  journal_->set_clock([this] { return network().now(); });
  journal_->set_snapshot_writer(
      [this](wire::Writer& w) { encode_snapshot(w); });
  journal_->recover(
      [this](wire::Reader& r) { load_snapshot(r); },
      [this](std::uint8_t type, wire::Reader& r, std::uint64_t /*lsn*/) {
        replay_record(type, r);
      });
  next_msg_id_ += kMsgIdStride;
  // Custody the lot drops on its own (TTL expiry, capacity eviction) is
  // journaled here; entries handed back by take()/take_all() are
  // journaled by the flush paths, which see their custody ids.
  parked_.set_removal_hook([this](std::uint64_t order) {
    journal_append(kJUnpark, 8, [&](wire::Writer& w) { w.u64(order); });
  });
}

void GdsServer::encode_snapshot(wire::Writer& w) const {
  // Containers are hash maps: sort every section so identical state
  // always snapshots to identical bytes (recovery-idempotence tests
  // compare snapshots directly).
  w.u8(kSnapshotVersion);
  w.u64(next_msg_id_);
  w.u32(static_cast<std::uint32_t>(ancestors_.size()));
  for (const NodeId a : ancestors_) w.u32(a.value());
  // v2: which ancestor is the live parent (failover rotation or adaptive
  // selection survives a crash; RTT estimates themselves are soft state).
  w.u32(static_cast<std::uint32_t>(ancestor_index_));

  std::vector<std::string> names = registered_names();
  w.u32(static_cast<std::uint32_t>(names.size()));
  for (const auto& server : names) {
    w.str(server);
    w.u32(local_servers_.at(server).value());
  }

  std::vector<std::string> routed;
  for (const auto& [route_name, route] : name_routes_) {
    if (!route.local) routed.push_back(route_name);
  }
  std::sort(routed.begin(), routed.end());
  w.u32(static_cast<std::uint32_t>(routed.size()));
  for (const auto& route_name : routed) {
    w.str(route_name);
    w.u32(name_routes_.at(route_name).via.value());
  }

  std::vector<std::uint32_t> child_ids;
  for (const auto& [child, last_seen] : children_) {
    child_ids.push_back(child.value());
  }
  std::sort(child_ids.begin(), child_ids.end());
  w.u32(static_cast<std::uint32_t>(child_ids.size()));
  for (const std::uint32_t child : child_ids) w.u32(child);

  std::vector<std::string> origins;
  for (const auto& [origin, seqs] : seen_) origins.push_back(origin);
  std::sort(origins.begin(), origins.end());
  w.u32(static_cast<std::uint32_t>(origins.size()));
  for (const auto& origin : origins) {
    w.str(origin);
    std::vector<std::uint64_t> seqs(seen_.at(origin).begin(),
                                    seen_.at(origin).end());
    std::sort(seqs.begin(), seqs.end());
    w.u32(static_cast<std::uint32_t>(seqs.size()));
    for (const std::uint64_t seq : seqs) w.u64(seq);
  }

  struct ParkRow {
    std::string key;
    SimTime expires_at;
    std::uint64_t order;
    std::vector<std::byte> flat;
  };
  std::vector<ParkRow> rows;
  parked_.for_each([&](const std::string& key,
                       const transport::ParkingLot::Entry& entry) {
    rows.push_back(
        ParkRow{key, entry.expires_at, entry.order, entry.env.flatten()});
  });
  std::sort(rows.begin(), rows.end(),
            [](const ParkRow& a, const ParkRow& b) { return a.order < b.order; });
  w.u32(static_cast<std::uint32_t>(rows.size()));
  for (const ParkRow& row : rows) {
    w.u64(row.order);
    w.str(row.key);
    w.i64(row.expires_at.as_micros());
    w.bytes(row.flat);
  }
}

void GdsServer::load_snapshot(wire::Reader& r) {
  if (r.u8() != kSnapshotVersion) {
    r.fail();
    return;
  }
  next_msg_id_ = std::max(next_msg_id_, r.u64());
  const std::uint32_t n_ancestors = r.u32();
  if (!r.ok()) return;
  std::vector<NodeId> ancestors;
  for (std::uint32_t i = 0; i < n_ancestors && r.ok(); ++i) {
    ancestors.push_back(NodeId{r.u32()});
  }
  const std::uint32_t anc_index = r.u32();
  if (!r.ok()) return;
  if (!ancestors.empty()) {
    ancestors_ = std::move(ancestors);
    ancestor_index_ =
        std::min<std::size_t>(anc_index, ancestors_.size() - 1);
    parent_ = ancestors_[ancestor_index_];
  }
  const std::uint32_t n_local = r.u32();
  for (std::uint32_t i = 0; i < n_local && r.ok(); ++i) {
    const std::string server = r.str();
    const NodeId node{r.u32()};
    if (!r.ok()) break;
    local_servers_[server] = node;
    name_routes_[server] = Route{.local = true, .via = NodeId::invalid()};
  }
  const std::uint32_t n_routes = r.u32();
  for (std::uint32_t i = 0; i < n_routes && r.ok(); ++i) {
    const std::string route_name = r.str();
    const NodeId via{r.u32()};
    if (!r.ok()) break;
    if (const auto it = name_routes_.find(route_name);
        it == name_routes_.end() || !it->second.local) {
      name_routes_[route_name] = Route{.local = false, .via = via};
    }
  }
  const std::uint32_t n_children = r.u32();
  for (std::uint32_t i = 0; i < n_children && r.ok(); ++i) {
    // Liveness timestamps are not durable state: a recovered child gets a
    // fresh lease and must heartbeat again before the next prune cutoff.
    children_[NodeId{r.u32()}] = network().now();
  }
  const std::uint32_t n_origins = r.u32();
  for (std::uint32_t i = 0; i < n_origins && r.ok(); ++i) {
    const std::string origin = r.str();
    const std::uint32_t n_seqs = r.u32();
    if (!r.ok()) break;
    auto& seqs = seen_[origin];
    for (std::uint32_t j = 0; j < n_seqs && r.ok(); ++j) seqs.insert(r.u64());
  }
  const std::uint32_t n_parked = r.u32();
  for (std::uint32_t i = 0; i < n_parked && r.ok(); ++i) {
    const std::uint64_t order = r.u64();
    const std::string key = r.str();
    const SimTime expires_at = SimTime::micros(r.i64());
    const std::vector<std::byte> flat = r.bytes();
    if (!r.ok()) break;
    if (auto env = wire::unpack(flat)) {
      parked_.restore(key, std::move(env).take(), expires_at, order);
    }
  }
}

void GdsServer::replay_record(std::uint8_t type, wire::Reader& r) {
  // Replay mutates containers only: no sends, no observers, no spans —
  // the rest of the world already saw these effects before the crash.
  switch (type) {
    case kJRegister: {
      const std::string server = r.str();
      const NodeId node{r.u32()};
      if (!r.ok()) return;
      local_servers_[server] = node;
      name_routes_[server] = Route{.local = true, .via = NodeId::invalid()};
      break;
    }
    case kJUnregister: {
      const std::string server = r.str();
      if (!r.ok()) return;
      local_servers_.erase(server);
      name_routes_.erase(server);
      break;
    }
    case kJRouteAdd: {
      const std::string route_name = r.str();
      const NodeId via{r.u32()};
      if (!r.ok()) return;
      // Mirror the live never-clobber-local guard.
      if (const auto it = name_routes_.find(route_name);
          it == name_routes_.end() || !it->second.local) {
        name_routes_[route_name] = Route{.local = false, .via = via};
      }
      break;
    }
    case kJRouteRemove: {
      const std::string route_name = r.str();
      if (!r.ok()) return;
      if (const auto it = name_routes_.find(route_name);
          it != name_routes_.end() && !it->second.local) {
        name_routes_.erase(it);
      }
      break;
    }
    case kJChildUp: {
      const NodeId child{r.u32()};
      if (!r.ok()) return;
      children_[child] = network().now();
      break;
    }
    case kJChildDown: {
      const NodeId child{r.u32()};
      if (!r.ok()) return;
      children_.erase(child);
      break;
    }
    case kJAdopt: {
      const NodeId new_parent{r.u32()};
      if (!r.ok()) return;
      apply_adopt_ancestors(new_parent);
      break;
    }
    case kJParentSelect: {
      const NodeId new_parent{r.u32()};
      if (!r.ok()) return;
      apply_parent_select(new_parent);
      break;
    }
    case kJSeen: {
      const std::string origin = r.str();
      const std::uint64_t seq = r.u64();
      if (!r.ok()) return;
      seen_[origin].insert(seq);
      break;
    }
    case kJPark: {
      const std::uint64_t order = r.u64();
      const std::string key = r.str();
      const SimTime expires_at = SimTime::micros(r.i64());
      const std::vector<std::byte> flat = r.bytes();
      if (!r.ok()) return;
      if (auto env = wire::unpack(flat)) {
        parked_.restore(key, std::move(env).take(), expires_at, order);
      }
      break;
    }
    case kJUnpark: {
      const std::uint64_t order = r.u64();
      if (!r.ok()) return;
      parked_.remove_order(order);
      break;
    }
    default:
      // Unknown record type: a newer writer's record surviving a
      // downgrade. Ignore rather than fail the whole replay.
      break;
  }
}

void GdsServer::collect_metrics(obs::MetricsRegistry& registry) const {
  const obs::Labels labels{{"node", name()}};
  registry.counter("gds.broadcasts_seen", labels) = stats_.broadcasts_seen;
  registry.counter("gds.duplicates_suppressed", labels) =
      stats_.duplicates_suppressed;
  registry.counter("gds.deliveries", labels) = stats_.deliveries;
  registry.counter("gds.relays_routed", labels) = stats_.relays_routed;
  registry.counter("gds.unroutable", labels) = stats_.unroutable;
  registry.counter("gds.reparents", labels) = stats_.reparents;
  registry.counter("gds.reparent.failover", labels) = stats_.reparents;
  registry.counter("gds.reparent.adaptive", labels) =
      stats_.adaptive_reparents;
  registry.counter("gds.rtt.probes_sent", labels) = stats_.rtt_probes_sent;
  registry.counter("gds.rtt.samples", labels) = stats_.rtt_samples;
  if (const auto parent_rtt = rtt_.find(parent_); parent_rtt != rtt_.end()) {
    registry.gauge("gds.rtt.parent_ewma_ms", labels) =
        parent_rtt->second.ewma_micros / 1000.0;
  }
  registry.gauge("gds.registered_servers", labels) =
      static_cast<double>(local_servers_.size());
  registry.gauge("gds.known_names", labels) =
      static_cast<double>(name_routes_.size());
  registry.gauge("gds.children", labels) =
      static_cast<double>(children_.size());
  const transport::ParkStats& park = parked_.stats();
  registry.counter("transport.park.parked", labels) = park.parked;
  registry.counter("transport.park.flushed", labels) = park.flushed;
  registry.counter("transport.park.expired", labels) = park.expired;
  registry.counter("transport.park.evicted", labels) = park.evicted;
  registry.gauge("transport.park.depth", labels) =
      static_cast<double>(parked_.size());
  if (journal_) journal_->collect_metrics(registry);
}

}  // namespace gsalert::gds
