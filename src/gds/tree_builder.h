// Helpers that assemble GDS trees inside a simulated network: a regular
// tree with given fan-out and depth, and the exact 7-node topology of the
// paper's Figure 2.
#pragma once

#include <string>
#include <vector>

#include "gds/gds_server.h"
#include "sim/network.h"

namespace gsalert::gds {

struct GdsTree {
  std::vector<GdsServer*> nodes;  // nodes[0] is the stratum-1 root

  GdsServer* root() const { return nodes.front(); }

  /// The leaf-most node covering index i when assigning GS servers
  /// round-robin over the tree's leaves.
  GdsServer* leaf_for(std::size_t i) const;
  std::vector<GdsServer*> leaves() const;
};

/// Build a complete tree: `fanout` children per node, `depth` strata
/// (depth 1 = root only). Node names are "<prefix>-<k>"; pass a distinct
/// prefix when building several trees in one network (e.g. for merging).
GdsTree build_tree(sim::Network& net, int fanout, int depth,
                   GdsConfig config = {}, const std::string& prefix = "gds");

/// The paper's Figure 2: seven GDS installations —
///   node 1 (stratum 1, root)
///   nodes 2, 5, 7 (stratum 2, children of 1)
///   nodes 3, 4 (stratum 3, children of 2), node 6 (stratum 3, child of 5)
/// Returned in id order gds-1..gds-7.
GdsTree build_figure2_tree(sim::Network& net, GdsConfig config = {});

}  // namespace gsalert::gds
