// Client-side access to the GDS, embedded in every Greenstone server (and
// in baseline brokers). Handles registration (with periodic refresh, so a
// restarted GDS node re-learns its servers), broadcast/multicast/relay
// submission, and name resolution through a transport::Endpoint (so
// resolve queries retransmit with backoff and report not-found on
// deadline instead of never firing).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "gds/messages.h"
#include "sim/network.h"
#include "transport/endpoint.h"
#include "wire/envelope.h"

namespace gsalert::gds {

class GdsClient {
 public:
  /// Timer token the owner must route to on_timer().
  static constexpr std::uint64_t kRefreshTimer = 0x6D5FE5;
  /// Endpoint tag for resolve timers (see transport::Endpoint::kTagShift);
  /// distinct from the owning server's own endpoint tag.
  static constexpr std::uint8_t kEndpointTag = 2;

  GdsClient() = default;

  /// Attach to the owner node and its GDS node. Call before Network::start.
  void attach(sim::Network* net, NodeId self, std::string self_name,
              NodeId gds_node);

  bool attached() const { return gds_node_.valid(); }
  NodeId gds_node() const { return gds_node_; }

  /// Register now and arm the periodic refresh.
  void start();
  /// Re-register after the owner restarts.
  void restart() { start(); }
  /// Called by the owner when the refresh timer fires.
  void on_refresh_timer();
  /// Timer dispatch: refresh + resolve retransmit/deadline timers.
  /// Returns false for tokens that are not ours.
  bool on_timer(std::uint64_t token);

  void unregister();

  /// Broadcast a payload to all servers in the directory; returns the
  /// sequence number used (the dedup key together with our name).
  std::uint64_t broadcast(std::uint16_t payload_type,
                          std::vector<std::byte> payload);

  /// Point-to-point relay by name through the tree.
  void relay(const std::string& dst, std::uint16_t payload_type,
             std::vector<std::byte> payload);

  /// Multicast to an explicit set of names.
  std::uint64_t multicast(std::vector<std::string> targets,
                          std::uint16_t payload_type,
                          std::vector<std::byte> payload);

  using ResolveCallback = std::function<void(bool found, const std::string&
                                                             owner_gds)>;
  /// Resolve a name; the callback fires exactly once — with the reply,
  /// or with found=false when the transport deadline expires.
  void resolve(const std::string& server_name, ResolveCallback callback);

  /// The owner forwards kGdsResolveReply envelopes here. Returns true if
  /// the envelope matched a pending resolve.
  bool handle_resolve_reply(const wire::Envelope& env);

  /// Refresh period for registrations (exposed for tests).
  SimTime refresh_interval() const { return refresh_interval_; }
  void set_refresh_interval(SimTime t) { refresh_interval_ = t; }

  /// Retry/deadline policy for resolve queries (exposed for tests).
  void set_resolve_policy(const transport::RetryPolicy& policy) {
    resolve_policy_ = policy;
  }
  const transport::EndpointStats& endpoint_stats() const {
    return endpoint_.stats();
  }

 private:
  void send_register();

  sim::Network* net_ = nullptr;
  NodeId self_;
  std::string self_name_;
  NodeId gds_node_;
  SimTime refresh_interval_ = SimTime::seconds(2);
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_query_ = 1;
  transport::RetryPolicy resolve_policy_{.deadline = SimTime::seconds(3),
                                         .max_retransmits = 2};
  transport::Endpoint endpoint_;
};

}  // namespace gsalert::gds
