#include "gds/messages.h"

namespace gsalert::gds {

namespace {
Error malformed(const char* what) {
  return Error{ErrorCode::kDecodeFailure, what};
}
}  // namespace

void RegisterBody::encode(wire::Writer& w) const { w.str(server_name); }

Result<RegisterBody> RegisterBody::decode(const std::vector<std::byte>& body) {
  wire::Reader r{body};
  RegisterBody out;
  out.server_name = r.str();
  if (!r.done()) return malformed("RegisterBody");
  return out;
}

void BroadcastBody::encode(wire::Writer& w) const {
  w.str(origin_server);
  w.u64(seq);
  w.u16(payload_type);
  w.bytes(payload);
}

Result<BroadcastBody> BroadcastBody::decode(
    const std::vector<std::byte>& body) {
  wire::Reader r{body};
  BroadcastBody out;
  out.origin_server = r.str();
  out.seq = r.u64();
  out.payload_type = r.u16();
  out.payload = r.bytes();
  if (!r.done()) return malformed("BroadcastBody");
  return out;
}

void RelayBody::encode(wire::Writer& w) const {
  w.str(origin_server);
  w.str(dst_server);
  w.u16(payload_type);
  w.bytes(payload);
}

Result<RelayBody> RelayBody::decode(const std::vector<std::byte>& body) {
  wire::Reader r{body};
  RelayBody out;
  out.origin_server = r.str();
  out.dst_server = r.str();
  out.payload_type = r.u16();
  out.payload = r.bytes();
  if (!r.done()) return malformed("RelayBody");
  return out;
}

void MulticastBody::encode(wire::Writer& w) const {
  w.str(origin_server);
  w.u64(seq);
  w.seq(targets, [](wire::Writer& w2, const std::string& t) { w2.str(t); });
  w.u16(payload_type);
  w.bytes(payload);
}

Result<MulticastBody> MulticastBody::decode(
    const std::vector<std::byte>& body) {
  wire::Reader r{body};
  MulticastBody out;
  out.origin_server = r.str();
  out.seq = r.u64();
  out.targets = r.seq<std::string>([](wire::Reader& r2) { return r2.str(); });
  out.payload_type = r.u16();
  out.payload = r.bytes();
  if (!r.done()) return malformed("MulticastBody");
  return out;
}

void ResolveBody::encode(wire::Writer& w) const {
  w.u64(query_id);
  w.str(server_name);
}

Result<ResolveBody> ResolveBody::decode(const std::vector<std::byte>& body) {
  wire::Reader r{body};
  ResolveBody out;
  out.query_id = r.u64();
  out.server_name = r.str();
  if (!r.done()) return malformed("ResolveBody");
  return out;
}

void ResolveReplyBody::encode(wire::Writer& w) const {
  w.u64(query_id);
  w.str(server_name);
  w.boolean(found);
  w.str(owner_gds);
}

Result<ResolveReplyBody> ResolveReplyBody::decode(
    const std::vector<std::byte>& body) {
  wire::Reader r{body};
  ResolveReplyBody out;
  out.query_id = r.u64();
  out.server_name = r.str();
  out.found = r.boolean();
  out.owner_gds = r.str();
  if (!r.done()) return malformed("ResolveReplyBody");
  return out;
}

void ChildHelloBody::encode(wire::Writer& w) const {
  w.u16(stratum);
  w.boolean(full);
  w.seq(adds, [](wire::Writer& w2, const std::string& s) { w2.str(s); });
  w.seq(removes, [](wire::Writer& w2, const std::string& s) { w2.str(s); });
}

Result<ChildHelloBody> ChildHelloBody::decode(
    const std::vector<std::byte>& body) {
  wire::Reader r{body};
  ChildHelloBody out;
  out.stratum = r.u16();
  out.full = r.boolean();
  out.adds = r.seq<std::string>([](wire::Reader& r2) { return r2.str(); });
  out.removes = r.seq<std::string>([](wire::Reader& r2) { return r2.str(); });
  if (!r.done()) return malformed("ChildHelloBody");
  return out;
}

}  // namespace gsalert::gds
