#include "gds/messages.h"

namespace gsalert::gds {

namespace {
Error malformed(const char* what) {
  return Error{ErrorCode::kDecodeFailure, what};
}
}  // namespace

void RegisterBody::encode(wire::Writer& w) const { w.str(server_name); }

Result<RegisterBody> RegisterBody::decode(std::span<const std::byte> body) {
  wire::Reader r{body};
  RegisterBody out;
  out.server_name = r.str();
  if (!r.done()) return malformed("RegisterBody");
  return out;
}

void BroadcastBody::encode(wire::Writer& w) const {
  w.str(origin_server);
  w.u64(seq);
  w.u16(payload_type);
  w.bytes(payload);
}

std::size_t BroadcastBody::wire_size() const {
  // str(4+n) + u64 + u16 + bytes(4+n)
  return 4 + origin_server.size() + 8 + 2 + 4 + payload.size();
}

Result<BroadcastView> BroadcastView::peek(std::span<const std::byte> body) {
  wire::Reader r{body};
  BroadcastView out;
  out.origin_server = r.str();
  out.seq = r.u64();
  out.payload_type = r.u16();
  const std::uint32_t payload_len = r.u32();
  if (!r.ok() || r.remaining() != payload_len) {
    return malformed("BroadcastBody");
  }
  out.payload = body.subspan(body.size() - payload_len);
  return out;
}

Result<BroadcastBody> BroadcastBody::decode(
    std::span<const std::byte> body) {
  wire::Reader r{body};
  BroadcastBody out;
  out.origin_server = r.str();
  out.seq = r.u64();
  out.payload_type = r.u16();
  out.payload = r.bytes();
  if (!r.done()) return malformed("BroadcastBody");
  return out;
}

void RelayBody::encode(wire::Writer& w) const {
  w.str(origin_server);
  w.str(dst_server);
  w.u16(payload_type);
  w.bytes(payload);
}

Result<RelayBody> RelayBody::decode(std::span<const std::byte> body) {
  wire::Reader r{body};
  RelayBody out;
  out.origin_server = r.str();
  out.dst_server = r.str();
  out.payload_type = r.u16();
  out.payload = r.bytes();
  if (!r.done()) return malformed("RelayBody");
  return out;
}

void MulticastBody::encode(wire::Writer& w) const {
  encode_fields(w, origin_server, seq, targets, payload_type, payload);
}

void MulticastBody::encode_fields(wire::Writer& w, const std::string& origin,
                                  std::uint64_t seq,
                                  const std::vector<std::string>& targets,
                                  std::uint16_t payload_type,
                                  std::span<const std::byte> payload) {
  std::size_t estimate = 4 + origin.size() + 8 + 4 + 2 + 4 + payload.size();
  for (const std::string& t : targets) estimate += 4 + t.size();
  w.reserve(estimate);
  w.str(origin);
  w.u64(seq);
  w.seq(targets, [](wire::Writer& w2, const std::string& t) { w2.str(t); });
  w.u16(payload_type);
  w.bytes(payload);
}

Result<MulticastBody> MulticastBody::decode(
    std::span<const std::byte> body) {
  wire::Reader r{body};
  MulticastBody out;
  out.origin_server = r.str();
  out.seq = r.u64();
  out.targets = r.seq<std::string>([](wire::Reader& r2) { return r2.str(); });
  out.payload_type = r.u16();
  out.payload = r.bytes();
  if (!r.done()) return malformed("MulticastBody");
  return out;
}

void ResolveBody::encode(wire::Writer& w) const {
  w.u64(query_id);
  w.str(server_name);
}

Result<ResolveBody> ResolveBody::decode(std::span<const std::byte> body) {
  wire::Reader r{body};
  ResolveBody out;
  out.query_id = r.u64();
  out.server_name = r.str();
  if (!r.done()) return malformed("ResolveBody");
  return out;
}

void ResolveReplyBody::encode(wire::Writer& w) const {
  w.u64(query_id);
  w.str(server_name);
  w.boolean(found);
  w.str(owner_gds);
}

Result<ResolveReplyBody> ResolveReplyBody::decode(
    std::span<const std::byte> body) {
  wire::Reader r{body};
  ResolveReplyBody out;
  out.query_id = r.u64();
  out.server_name = r.str();
  out.found = r.boolean();
  out.owner_gds = r.str();
  if (!r.done()) return malformed("ResolveReplyBody");
  return out;
}

void ChildHelloBody::encode(wire::Writer& w) const {
  w.u16(stratum);
  w.boolean(full);
  w.seq(adds, [](wire::Writer& w2, const std::string& s) { w2.str(s); });
  w.seq(removes, [](wire::Writer& w2, const std::string& s) { w2.str(s); });
}

Result<ChildHelloBody> ChildHelloBody::decode(
    std::span<const std::byte> body) {
  wire::Reader r{body};
  ChildHelloBody out;
  out.stratum = r.u16();
  out.full = r.boolean();
  out.adds = r.seq<std::string>([](wire::Reader& r2) { return r2.str(); });
  out.removes = r.seq<std::string>([](wire::Reader& r2) { return r2.str(); });
  if (!r.done()) return malformed("ChildHelloBody");
  return out;
}

}  // namespace gsalert::gds
