// A Greenstone Directory Service node (paper §4.1, Figure 2).
//
// GDS nodes form a stratum tree: one primary server on stratum 1, further
// nodes on strata 2+. Each Greenstone server registers with exactly one GDS
// node. The GDS provides, per the paper:
//   - a naming service (resolve a server's network-internal name),
//   - broadcast: "distributed upwards within the tree and downwards to all
//     tree leaves", with duplicate suppression,
//   - multicast to an explicit set of names,
//   - anonymous point-to-point relay ("without the servers having to be
//     aware of the identity of the recipient"),
//   - best-effort delivery.
// Tree maintenance (heartbeats and re-parenting to a configured ancestor
// list) keeps broadcast working across node failures.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "gds/messages.h"
#include "journal/journal.h"
#include "sim/network.h"
#include "sim/node.h"
#include "transport/parking.h"
#include "wire/envelope.h"

namespace gsalert::gds {

struct GdsConfig {
  std::uint16_t stratum = 1;
  /// Heartbeat period towards the parent; also the child-liveness sweep.
  SimTime heartbeat_interval = SimTime::millis(500);
  /// Consecutive unanswered heartbeats before re-parenting.
  int heartbeat_miss_limit = 3;
  /// Duplicate suppression for broadcasts (ablation switch for bench E7).
  bool dedup_enabled = true;
  /// Journal registrations, routes, children, dedup state and parked
  /// custody to the node's sim storage; crash-restart replays the journal
  /// instead of forgetting. The durable child registry is what lets a
  /// restarted parent keep routing downward without the periodic
  /// full-hello refresh the pre-journal tree needed (the old
  /// `hello_refresh_every` soft-state patch, found by `chaos_test
  /// --seed=9009`). When false the node keeps the PR-1 amnesia
  /// semantics: rejoin empty, rely on re-registration.
  bool durable = true;
  journal::JournalPolicy journal;
  /// Store-and-forward custody for relays whose target is unknown here
  /// (paper §4.1): parked messages wait up to `park_ttl` for the name to
  /// register (or a parent to appear) before expiring; `park_capacity`
  /// bounds memory, evicting oldest-first.
  SimTime park_ttl = SimTime::seconds(10);
  std::size_t park_capacity = 128;
};

/// Counters exposed for benches and tests.
struct GdsNodeStats {
  std::uint64_t broadcasts_seen = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t deliveries = 0;       // kGdsDeliver messages to GS servers
  std::uint64_t relays_routed = 0;
  std::uint64_t unroutable = 0;       // relay/multicast target unknown at root
  std::uint64_t reparents = 0;
};

// Note: store-and-forward counters (parked/flushed/expired/evicted) live
// in transport::ParkStats, exposed via GdsServer::park_stats().

class GdsServer : public sim::Node {
 public:
  explicit GdsServer(GdsConfig config) : config_(config) {
    parked_.set_policy({config_.park_ttl, config_.park_capacity});
  }

  /// Wire the tree (done by the builder before Network::start). The
  /// ancestor list is ordered: [parent, grandparent, ..., root]; on parent
  /// failure the node re-parents to the next entry.
  void set_ancestors(std::vector<NodeId> ancestors);

  /// Merge into another directory tree at runtime: `new_parent` becomes
  /// this node's parent and the whole subtree's names are advertised
  /// there. This is how independently grown GDS networks federate —
  /// the operation the paper notes DHT overlays cannot offer "without
  /// considerable reconstruction" (§2.2). Typically called on the root of
  /// the joining tree.
  void adopt_parent(NodeId new_parent);

  void on_start() override;
  void on_recover() override;
  void on_rejoin() override;
  void on_packet(NodeId from, const sim::Packet& packet) override;
  void on_timer(std::uint64_t token) override;

  /// Observer invoked for every broadcast delivery to a locally registered
  /// server (not relays or multicasts). Invariant checkers use it to
  /// assert exactly-once delivery per (destination, origin, seq).
  using DeliveryObserver = std::function<void(
      const std::string& dst_server, const std::string& origin_server,
      std::uint64_t seq)>;
  void set_delivery_observer(DeliveryObserver observer) {
    delivery_observer_ = std::move(observer);
  }

  std::uint16_t stratum() const { return config_.stratum; }
  NodeId parent() const { return parent_; }
  const GdsNodeStats& stats() const { return stats_; }
  /// Store-and-forward queue depth / counters (transport.park.*).
  std::size_t parked_count() const { return parked_.size(); }
  const transport::ParkStats& park_stats() const { return parked_.stats(); }
  /// Export stats under `gds.*{node=<name>}` (see docs/OBSERVABILITY.md).
  void collect_metrics(obs::MetricsRegistry& registry) const;
  std::size_t registered_count() const { return local_servers_.size(); }
  std::size_t known_names() const { return name_routes_.size(); }
  bool knows_name(const std::string& name) const;
  /// Locally registered server names, sorted (durability checker).
  std::vector<std::string> registered_names() const;
  /// Broadcast dedup state as sorted "origin#seq" keys (durability
  /// checker: this set may only grow across a crash-restart).
  std::vector<std::string> broadcast_seen_keys() const;
  /// The node's journal, when durable and started (tests, metrics).
  const journal::Journal* journal() const { return journal_.get(); }

 private:
  struct Route {
    bool local = false;
    NodeId via;  // child to forward towards (when !local)
  };

  /// Forward a relay envelope (already trace-restamped by the caller's
  /// scope) towards `dst`: local delivery, a child route, the parent —
  /// or park it with `park_expiry` custody when no hop exists.
  void route_relay(NodeId from, wire::Envelope env, RelayBody body,
                   SimTime park_expiry);
  /// Re-route every parked envelope waiting on `dst` (name registered or
  /// advertised by a child).
  void flush_parked(const std::string& dst);
  /// Re-route the whole parking lot (a parent appeared via re-parent or
  /// adoption — unknown names now have an upward hop).
  void flush_all_parked();

  void handle_register(NodeId from, const wire::Envelope& env);
  void handle_unregister(const wire::Envelope& env);
  void handle_child_hello(NodeId from, const wire::Envelope& env);
  void handle_heartbeat(NodeId from, const wire::Envelope& env);
  void handle_heartbeat_ack(NodeId from);
  void handle_broadcast(NodeId from, const wire::Envelope& env);
  void handle_relay(NodeId from, wire::Envelope env);
  void handle_multicast(NodeId from, const wire::Envelope& env);
  void handle_resolve(NodeId from, const wire::Envelope& env);
  void handle_resolve_reply(NodeId from, const wire::Envelope& env);

  /// Deliver an already-encoded BroadcastBody frame to a locally
  /// registered server. The frame is shared (refcounted), not copied, so
  /// fanning a broadcast out to N local servers costs N headers.
  void deliver_frame(NodeId server, wire::Frame body_frame);
  /// Encode-and-deliver convenience for relay/multicast local hits.
  void deliver(NodeId server, const BroadcastBody& body);

  void send_envelope(NodeId to, const wire::Envelope& env);
  void send_child_hello(bool full, std::vector<std::string> adds,
                        std::vector<std::string> removes);
  void advertise_up(std::vector<std::string> adds,
                    std::vector<std::string> removes);
  void reparent();
  void prune_dead_children();
  std::vector<std::string> subtree_names() const;
  bool is_duplicate(const std::string& origin, std::uint64_t seq);

  /// --- durability -------------------------------------------------------
  /// Open the journal over the node's storage and replay it (no-op when
  /// !config_.durable or already open).
  void ensure_journal();
  /// Frame-and-append helper; `payload_size` must be an upper bound on
  /// the encoded payload (exact reserves keep Writer grow budgets green).
  template <typename Fn>
  void journal_append(std::uint8_t type, std::size_t payload_size,
                      Fn&& encode) {
    if (!journal_) return;
    wire::Writer w;
    w.reserve(payload_size);
    encode(w);
    journal_->append(type, std::move(w));
  }
  void commit_journal() {
    if (journal_) journal_->commit();
  }
  void encode_snapshot(wire::Writer& w) const;
  void load_snapshot(wire::Reader& r);
  void replay_record(std::uint8_t type, wire::Reader& r);
  /// Ancestor-list mutation shared by adopt_parent and its replay.
  void apply_adopt_ancestors(NodeId new_parent);
  void clear_state(bool reset_ancestors_to_config);

  GdsConfig config_;
  NodeId parent_;                       // invalid at root
  std::vector<NodeId> ancestors_;
  /// Builder-time ancestor ring (set_ancestors), before runtime
  /// adoptions. Recovery resets to this, then replays adopt records.
  std::vector<NodeId> config_ancestors_;
  std::size_t ancestor_index_ = 0;
  int heartbeat_misses_ = 0;
  bool heartbeat_outstanding_ = false;

  std::unordered_map<std::string, NodeId> local_servers_;
  std::unordered_map<std::string, Route> name_routes_;
  std::unordered_map<NodeId, SimTime> children_;  // child -> last heartbeat

  // Duplicate suppression for broadcast/multicast: origin -> seen seqs.
  std::unordered_map<std::string, std::unordered_set<std::uint64_t>> seen_;

  // Resolve back-paths: (origin server name, query id) -> previous hop.
  std::unordered_map<std::string, NodeId> resolve_backpaths_;

  std::uint64_t next_msg_id_ = 1;
  transport::ParkingLot parked_;
  std::unique_ptr<journal::Journal> journal_;
  GdsNodeStats stats_;
  DeliveryObserver delivery_observer_;
};

}  // namespace gsalert::gds
