// A Greenstone Directory Service node (paper §4.1, Figure 2).
//
// GDS nodes form a stratum tree: one primary server on stratum 1, further
// nodes on strata 2+. Each Greenstone server registers with exactly one GDS
// node. The GDS provides, per the paper:
//   - a naming service (resolve a server's network-internal name),
//   - broadcast: "distributed upwards within the tree and downwards to all
//     tree leaves", with duplicate suppression,
//   - multicast to an explicit set of names,
//   - anonymous point-to-point relay ("without the servers having to be
//     aware of the identity of the recipient"),
//   - best-effort delivery.
// Tree maintenance (heartbeats and re-parenting to a configured ancestor
// list) keeps broadcast working across node failures.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "gds/messages.h"
#include "journal/journal.h"
#include "sim/network.h"
#include "sim/node.h"
#include "transport/parking.h"
#include "wire/envelope.h"

namespace gsalert::gds {

struct GdsConfig {
  std::uint16_t stratum = 1;
  /// Heartbeat period towards the parent; also the child-liveness sweep.
  SimTime heartbeat_interval = SimTime::millis(500);
  /// Consecutive unanswered heartbeats before re-parenting.
  int heartbeat_miss_limit = 3;
  /// Duplicate suppression for broadcasts (ablation switch for bench E7).
  bool dedup_enabled = true;
  /// Journal registrations, routes, children, dedup state and parked
  /// custody to the node's sim storage; crash-restart replays the journal
  /// instead of forgetting. The durable child registry is what lets a
  /// restarted parent keep routing downward without the periodic
  /// full-hello refresh the pre-journal tree needed (the old
  /// `hello_refresh_every` soft-state patch, found by `chaos_test
  /// --seed=9009`). When false the node keeps the PR-1 amnesia
  /// semantics: rejoin empty, rely on re-registration.
  bool durable = true;
  journal::JournalPolicy journal;
  /// Store-and-forward custody for relays whose target is unknown here
  /// (paper §4.1): parked messages wait up to `park_ttl` for the name to
  /// register (or a parent to appear) before expiring; `park_capacity`
  /// bounds memory, evicting oldest-first.
  SimTime park_ttl = SimTime::seconds(10);
  std::size_t park_capacity = 128;
  /// Latency-aware parent selection: measure RTT to proper ancestors
  /// (passively via heartbeat acks for the current parent, with active
  /// kGdsRttProbe round trips for the rest) and re-parent to a markedly
  /// closer ancestor. Off by default so the classic fixed tree — and all
  /// its deterministic message streams — is unchanged unless asked for.
  bool adaptive_parent = false;
  /// Probe one non-parent proper ancestor every Nth heartbeat tick.
  int rtt_probe_every = 1;
  /// EWMA smoothing factor applied to each new RTT sample.
  double rtt_ewma_alpha = 0.3;
  /// Samples required per candidate before its estimate is trusted.
  int rtt_min_samples = 3;
  /// Hysteresis: a candidate must beat the parent's smoothed RTT by this
  /// fraction before an adaptive re-parent fires (jitter never flaps).
  double reparent_improvement = 0.25;
  /// Hysteresis: minimum spacing between adaptive re-parents.
  SimTime reparent_min_interval = SimTime::seconds(5);
};

/// Counters exposed for benches and tests.
struct GdsNodeStats {
  std::uint64_t broadcasts_seen = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t deliveries = 0;       // kGdsDeliver messages to GS servers
  std::uint64_t relays_routed = 0;
  std::uint64_t unroutable = 0;       // relay/multicast target unknown at root
  std::uint64_t reparents = 0;        // failover rotations (parent silent)
  std::uint64_t adaptive_reparents = 0;  // RTT-driven parent switches
  std::uint64_t rtt_probes_sent = 0;
  std::uint64_t rtt_samples = 0;
};

// Note: store-and-forward counters (parked/flushed/expired/evicted) live
// in transport::ParkStats, exposed via GdsServer::park_stats().

class GdsServer : public sim::Node {
 public:
  explicit GdsServer(GdsConfig config) : config_(config) {
    parked_.set_policy({config_.park_ttl, config_.park_capacity});
  }

  /// Wire the tree (done by the builder before Network::start). The
  /// ancestor list is ordered: [parent, grandparent, ..., root]; on parent
  /// failure the node re-parents to the next entry. The first
  /// `proper_count` entries are genuine (strictly lower stratum) ancestors;
  /// anything after — sibling-ring fallbacks — stays failover-only and is
  /// never chosen by RTT-driven adaptive selection (stratum constraint).
  void set_ancestors(std::vector<NodeId> ancestors,
                     std::size_t proper_count = static_cast<std::size_t>(-1));

  /// Merge into another directory tree at runtime: `new_parent` becomes
  /// this node's parent and the whole subtree's names are advertised
  /// there. This is how independently grown GDS networks federate —
  /// the operation the paper notes DHT overlays cannot offer "without
  /// considerable reconstruction" (§2.2). Typically called on the root of
  /// the joining tree.
  void adopt_parent(NodeId new_parent);

  void on_start() override;
  void on_recover() override;
  void on_rejoin() override;
  void on_packet(NodeId from, const sim::Packet& packet) override;
  void on_timer(std::uint64_t token) override;

  /// Observer invoked for every broadcast delivery to a locally registered
  /// server (not relays or multicasts). Invariant checkers use it to
  /// assert exactly-once delivery per (destination, origin, seq).
  using DeliveryObserver = std::function<void(
      const std::string& dst_server, const std::string& origin_server,
      std::uint64_t seq)>;
  void set_delivery_observer(DeliveryObserver observer) {
    delivery_observer_ = std::move(observer);
  }

  std::uint16_t stratum() const { return config_.stratum; }
  NodeId parent() const { return parent_; }
  const GdsNodeStats& stats() const { return stats_; }
  /// Store-and-forward queue depth / counters (transport.park.*).
  std::size_t parked_count() const { return parked_.size(); }
  const transport::ParkStats& park_stats() const { return parked_.stats(); }
  /// Export stats under `gds.*{node=<name>}` (see docs/OBSERVABILITY.md).
  void collect_metrics(obs::MetricsRegistry& registry) const;
  std::size_t registered_count() const { return local_servers_.size(); }
  std::size_t known_names() const { return name_routes_.size(); }
  bool knows_name(const std::string& name) const;
  /// Locally registered server names, sorted (durability checker).
  std::vector<std::string> registered_names() const;
  /// Broadcast dedup state as sorted "origin#seq" keys (durability
  /// checker: this set may only grow across a crash-restart).
  std::vector<std::string> broadcast_seen_keys() const;
  /// The node's journal, when durable and started (tests, metrics).
  const journal::Journal* journal() const { return journal_.get(); }
  /// Smoothed RTT towards `node` in microseconds, or -1 before the first
  /// sample (tests and benches assert adaptation against this).
  double rtt_ewma_micros(NodeId node) const;
  /// Quiesce adaptive control traffic (RTT probes + re-parent decisions)
  /// while keeping the current tree shape. Benches freeze a converged
  /// adaptive tree so the measured window carries the exact same message
  /// mix as a non-adaptive run — data-path cost only.
  void set_adaptive_frozen(bool frozen) { adaptive_frozen_ = frozen; }

 private:
  struct Route {
    bool local = false;
    NodeId via;  // child to forward towards (when !local)
  };

  /// Forward a relay envelope (already trace-restamped by the caller's
  /// scope) towards `dst`: local delivery, a child route, the parent —
  /// or park it with `park_expiry` custody when no hop exists.
  void route_relay(NodeId from, wire::Envelope env, RelayBody body,
                   SimTime park_expiry);
  /// Re-route every parked envelope waiting on `dst` (name registered or
  /// advertised by a child).
  void flush_parked(const std::string& dst);
  /// Re-route the whole parking lot (a parent appeared via re-parent or
  /// adoption — unknown names now have an upward hop).
  void flush_all_parked();

  void handle_register(NodeId from, const wire::Envelope& env);
  void handle_unregister(const wire::Envelope& env);
  void handle_child_hello(NodeId from, const wire::Envelope& env);
  void handle_heartbeat(NodeId from, const wire::Envelope& env);
  void handle_heartbeat_ack(NodeId from, const wire::Envelope& env);
  void handle_rtt_probe(NodeId from, const wire::Envelope& env);
  void handle_rtt_probe_ack(NodeId from, const wire::Envelope& env);
  void handle_broadcast(NodeId from, const wire::Envelope& env);
  void handle_relay(NodeId from, wire::Envelope env);
  void handle_multicast(NodeId from, const wire::Envelope& env);
  void handle_resolve(NodeId from, const wire::Envelope& env);
  void handle_resolve_reply(NodeId from, const wire::Envelope& env);

  /// Deliver an already-encoded BroadcastBody frame to a locally
  /// registered server. The frame is shared (refcounted), not copied, so
  /// fanning a broadcast out to N local servers costs N headers.
  void deliver_frame(NodeId server, wire::Frame body_frame);
  /// Encode-and-deliver convenience for relay/multicast local hits.
  void deliver(NodeId server, const BroadcastBody& body);

  void send_envelope(NodeId to, const wire::Envelope& env);
  void send_child_hello(bool full, std::vector<std::string> adds,
                        std::vector<std::string> removes);
  void advertise_up(std::vector<std::string> adds,
                    std::vector<std::string> removes);
  void reparent();
  /// Send one kGdsRttProbe round-robin over the non-parent proper
  /// ancestors (adaptive mode, every Nth heartbeat tick).
  void probe_ancestor_rtt();
  /// Fold a completed round trip into the per-node EWMA.
  void record_rtt_sample(NodeId from, std::uint64_t msg_id);
  /// Switch to the proper ancestor with the best smoothed RTT when it
  /// beats the parent by the hysteresis margin.
  void maybe_adaptive_reparent();
  void prune_dead_children();
  std::vector<std::string> subtree_names() const;
  bool is_duplicate(const std::string& origin, std::uint64_t seq);

  /// --- durability -------------------------------------------------------
  /// Open the journal over the node's storage and replay it (no-op when
  /// !config_.durable or already open).
  void ensure_journal();
  /// Frame-and-append helper; `payload_size` must be an upper bound on
  /// the encoded payload (exact reserves keep Writer grow budgets green).
  template <typename Fn>
  void journal_append(std::uint8_t type, std::size_t payload_size,
                      Fn&& encode) {
    if (!journal_) return;
    wire::Writer w;
    w.reserve(payload_size);
    encode(w);
    journal_->append(type, std::move(w));
  }
  void commit_journal() {
    if (journal_) journal_->commit();
  }
  void encode_snapshot(wire::Writer& w) const;
  void load_snapshot(wire::Reader& r);
  void replay_record(std::uint8_t type, wire::Reader& r);
  /// Ancestor-list mutation shared by adopt_parent and its replay.
  void apply_adopt_ancestors(NodeId new_parent);
  /// Parent-selection mutation shared by reparent paths and their replay:
  /// point at `new_parent` if it is in the ancestor list (no-op otherwise).
  void apply_parent_select(NodeId new_parent);
  void clear_state(bool reset_ancestors_to_config);

  GdsConfig config_;
  NodeId parent_;                       // invalid at root
  std::vector<NodeId> ancestors_;
  /// Builder-time ancestor ring (set_ancestors), before runtime
  /// adoptions. Recovery resets to this, then replays adopt records.
  std::vector<NodeId> config_ancestors_;
  /// Stratum-safe re-parent candidates: the genuine ancestors from
  /// set_ancestors plus runtime adoptions; excludes sibling-ring entries.
  std::vector<NodeId> proper_ancestors_;
  std::vector<NodeId> config_proper_ancestors_;
  std::size_t ancestor_index_ = 0;
  int heartbeat_misses_ = 0;
  bool heartbeat_outstanding_ = false;

  /// RTT measurement (adaptive mode only; soft state, re-learned after a
  /// crash — the chosen parent itself is journaled).
  struct RttProbe {
    std::uint64_t msg_id = 0;
    SimTime sent_at{};
  };
  struct RttEstimate {
    double ewma_micros = 0.0;
    std::uint64_t samples = 0;
  };
  std::unordered_map<NodeId, RttProbe> rtt_outstanding_;
  std::unordered_map<NodeId, RttEstimate> rtt_;
  std::uint64_t rtt_probe_tick_ = 0;
  std::size_t rtt_probe_rr_ = 0;
  SimTime last_adaptive_reparent_{};
  bool adaptive_frozen_ = false;

  std::unordered_map<std::string, NodeId> local_servers_;
  std::unordered_map<std::string, Route> name_routes_;
  std::unordered_map<NodeId, SimTime> children_;  // child -> last heartbeat

  // Duplicate suppression for broadcast/multicast: origin -> seen seqs.
  std::unordered_map<std::string, std::unordered_set<std::uint64_t>> seen_;

  // Resolve back-paths: (origin server name, query id) -> previous hop.
  std::unordered_map<std::string, NodeId> resolve_backpaths_;

  std::uint64_t next_msg_id_ = 1;
  transport::ParkingLot parked_;
  std::unique_ptr<journal::Journal> journal_;
  GdsNodeStats stats_;
  DeliveryObserver delivery_observer_;
};

}  // namespace gsalert::gds
