#include "obs/flight_recorder.h"

#include <cstdio>
#include <sstream>

namespace gsalert::obs {

void FlightRecorder::on_span(const Span& span) {
  std::string line = span.name + " trace=" + std::to_string(span.trace_id) +
                     " span=" + std::to_string(span.span_id) +
                     " parent=" + std::to_string(span.parent_span_id) +
                     " hop=" + std::to_string(span.hop);
  for (const auto& [key, value] : span.args) {
    line += " " + key + "=" + value;
  }
  push(span.node, span.at, std::move(line));
}

void FlightRecorder::note(SimTime at, const std::string& node,
                          std::string line) {
  push(node, at, std::move(line));
}

void FlightRecorder::push(const std::string& node, SimTime at,
                          std::string line) {
  Ring& ring = rings_[node];
  ring.entries.push_back(Entry{at, std::move(line)});
  if (ring.entries.size() > capacity_) {
    ring.entries.pop_front();
    ring.evicted += 1;
  }
}

std::size_t FlightRecorder::total_entries() const {
  std::size_t n = 0;
  for (const auto& [node, ring] : rings_) n += ring.entries.size();
  return n;
}

std::string FlightRecorder::dump() const {
  std::ostringstream os;
  os << "--- flight recorder (" << total_entries() << " entries, "
     << rings_.size() << " nodes) ---\n";
  for (const auto& [node, ring] : rings_) {
    os << "[" << node << "]";
    if (ring.evicted > 0) os << " (" << ring.evicted << " older evicted)";
    os << "\n";
    for (const Entry& entry : ring.entries) {
      char at[32];
      std::snprintf(at, sizeof at, "  t=%.1fms ", entry.at.as_millis());
      os << at << entry.line << "\n";
    }
  }
  os << "--- end flight recorder ---\n";
  return os.str();
}

}  // namespace gsalert::obs
