// The latency-truth layer: end-to-end notification latency and its
// per-stage decomposition, derived from the causal trace spans the rest
// of the stack already emits (docs/OBSERVABILITY.md "Latency SLOs").
//
// Two pieces:
//
//  - LatencyHistogram: O(1)-record, fixed-memory log2-bucketed histogram
//    (the boundaries of common::log2_bucket_index). Quantiles are
//    bucket-resolved: the reported pN is the inclusive upper bound of
//    the bucket holding the Nth sample — an overestimate by at most 2x,
//    which is exactly the resolution an SLO gate needs.
//
//  - LatencyTracker: a SpanSink that turns the span stream into the
//    user-visible number the paper's service lives or dies by — sim-time
//    from a `publish` at a DL server to each `notify` at a subscriber —
//    plus the stage decomposition: flood progress (`gds-deliver`),
//    store-and-forward dwell (`gds-park-flush` dwell_ms), retransmit
//    delay (`retry` since_ms) and hop counts. Wall-clock stages (match
//    CPU, journal fsync) cannot ride spans without breaking the
//    byte-identical-trace guarantee, so they are merged into the same
//    LatencyBreakdown by the owner (workload::Scenario::outcome).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "obs/trace.h"

namespace gsalert::obs {

class MetricsRegistry;

/// Metric label set, `{{"node","gds-1"},...}`. Defined here (the lowest
/// obs header that needs it) and re-exported by metrics_registry.h.
using Labels = std::vector<std::pair<std::string, std::string>>;

class LatencyHistogram {
 public:
  /// Record one non-negative sample (negatives clamp to bucket 0).
  void record(double value);
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double mean() const;
  double max() const { return max_; }
  /// Bucket-resolved quantile: the log2 upper bound of the bucket that
  /// contains the ceil(q*count)-th sample. 0 on empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
  double p999() const { return quantile(0.999); }

  /// "count=N mean=... p50=... p95=... p99=... p999=... max=..."
  std::string summary() const;
  /// {"count":N,...,"buckets":[[bound,count],...]} — same shape as the
  /// exact Histogram export so the bench sentinel reads both alike.
  std::string json() const;

  void clear();

  std::uint64_t bucket_count(std::size_t index) const {
    return buckets_[index];
  }
  static constexpr std::size_t kBuckets = 64;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Everything the latency layer knows about one run, in one place.
/// Sim-time stages come from the tracker; wall-clock stages (match CPU,
/// journal fsync) are merged in by the owner. All exported together by
/// export_to(), one series per stage (see docs/OBSERVABILITY.md).
struct LatencyBreakdown {
  LatencyHistogram e2e_ms;              // publish -> notify, sim-time
  LatencyHistogram flood_ms;            // publish -> each gds-deliver
  LatencyHistogram park_dwell_ms;       // store-and-forward custody dwell
  LatencyHistogram retransmit_delay_ms; // retry fired N ms after first send
  LatencyHistogram match_cpu_us;        // wall-clock filter/match per event
  LatencyHistogram fsync_us;            // wall-clock journal group commit
  LatencyHistogram notify_hops;         // network hops behind each notify

  void merge(const LatencyBreakdown& other);
  /// Export every stage under `latency.*` / `latency.stage.*` with
  /// `labels`. Always emits every series (count=0 when a stage never
  /// fired) so the bench sentinel can hold a fixed schema.
  void export_to(MetricsRegistry& registry, const Labels& labels = {}) const;
};

/// Span sink computing the sim-time half of a LatencyBreakdown from the
/// live span stream. Install with ScopedSink (or let workload::Scenario
/// keep one armed for its lifetime).
class LatencyTracker : public SpanSink {
 public:
  void on_span(const Span& span) override;

  /// For benches without an alerting pipeline (e.g. collection-access
  /// probes): feed the end-to-end number directly.
  void record_e2e_ms(double ms) { breakdown_.e2e_ms.record(ms); }

  const LatencyBreakdown& breakdown() const { return breakdown_; }
  LatencyBreakdown& breakdown() { return breakdown_; }

  std::uint64_t traces_started() const { return traces_started_; }
  std::uint64_t notifies_seen() const { return notifies_seen_; }
  std::uint64_t orphan_spans() const { return orphan_spans_; }

  void clear();

 private:
  double trace_start_ms(std::uint64_t trace_id, bool* known) const;

  // trace id -> publish time (ms). Bounded open map: traces are dense
  // ids from the deterministic allocator, so an eviction ring suffices.
  static constexpr std::size_t kMaxTraces = 8192;
  struct TraceStart {
    std::uint64_t trace_id = 0;
    double at_ms = 0.0;
  };
  std::array<TraceStart, kMaxTraces> starts_{};

  LatencyBreakdown breakdown_;
  std::uint64_t traces_started_ = 0;
  std::uint64_t notifies_seen_ = 0;
  std::uint64_t orphan_spans_ = 0;  // notify/deliver with unknown trace
};

}  // namespace gsalert::obs
