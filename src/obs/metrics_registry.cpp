#include "obs/metrics_registry.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

#include "obs/json_util.h"

namespace gsalert::obs {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string histogram_json(const Histogram& h) {
  if (h.empty()) return "{\"count\":0}";
  std::ostringstream os;
  os << "{\"count\":" << h.count() << ",\"min\":" << fmt_double(h.min())
     << ",\"mean\":" << fmt_double(h.mean())
     << ",\"p50\":" << fmt_double(h.p50())
     << ",\"p90\":" << fmt_double(h.quantile(0.90))
     << ",\"p95\":" << fmt_double(h.p95())
     << ",\"p99\":" << fmt_double(h.p99())
     << ",\"p999\":" << fmt_double(h.p999())
     << ",\"max\":" << fmt_double(h.max()) << ",\"buckets\":[";
  bool first = true;
  for (const auto& [bound, count] : h.log2_buckets()) {
    os << (first ? "" : ",") << "[" << fmt_double(bound) << "," << count
       << "]";
    first = false;
  }
  os << "]}";
  return os.str();
}

}  // namespace

std::string MetricsRegistry::series_key(std::string_view name,
                                        Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::string key{name};
  if (!labels.empty()) {
    key += "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) key += ",";
      first = false;
      key += k + "=" + v;
    }
    key += "}";
  }
  return key;
}

MetricsRegistry::Series& MetricsRegistry::find_or_create(
    std::string_view name, const Labels& labels, Kind kind) {
  const std::string key = series_key(name, labels);
  auto [it, inserted] = series_.try_emplace(key, Series{kind, 0, 0.0, {}, {}});
  // A name must keep one kind for its lifetime; mixing would silently
  // read the wrong union member.
  assert(it->second.kind == kind);
  (void)inserted;
  return it->second;
}

std::uint64_t& MetricsRegistry::counter(std::string_view name,
                                        const Labels& labels) {
  return find_or_create(name, labels, Kind::kCounter).counter;
}

double& MetricsRegistry::gauge(std::string_view name, const Labels& labels) {
  return find_or_create(name, labels, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const Labels& labels) {
  return find_or_create(name, labels, Kind::kHistogram).hist;
}

LatencyHistogram& MetricsRegistry::latency(std::string_view name,
                                           const Labels& labels) {
  return find_or_create(name, labels, Kind::kLatency).lat;
}

std::string MetricsRegistry::text_snapshot() const {
  std::ostringstream os;
  for (const auto& [key, series] : series_) {
    os << key << " = ";
    switch (series.kind) {
      case Kind::kCounter:
        os << series.counter;
        break;
      case Kind::kGauge:
        os << fmt_double(series.gauge);
        break;
      case Kind::kHistogram:
        os << series.hist.summary();
        break;
      case Kind::kLatency:
        os << series.lat.summary();
        break;
    }
    os << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::json() const {
  std::ostringstream counters, gauges, histograms;
  bool c1 = true, g1 = true, h1 = true;
  for (const auto& [key, series] : series_) {
    switch (series.kind) {
      case Kind::kCounter:
        counters << (c1 ? "" : ",") << "\"" << detail::json_escape(key)
                 << "\":" << series.counter;
        c1 = false;
        break;
      case Kind::kGauge:
        gauges << (g1 ? "" : ",") << "\"" << detail::json_escape(key)
               << "\":" << fmt_double(series.gauge);
        g1 = false;
        break;
      case Kind::kHistogram:
        histograms << (h1 ? "" : ",") << "\"" << detail::json_escape(key)
                   << "\":" << histogram_json(series.hist);
        h1 = false;
        break;
      case Kind::kLatency:
        histograms << (h1 ? "" : ",") << "\"" << detail::json_escape(key)
                   << "\":" << series.lat.json();
        h1 = false;
        break;
    }
  }
  return "{\"counters\":{" + counters.str() + "},\"gauges\":{" +
         gauges.str() + "},\"histograms\":{" + histograms.str() + "}}";
}

}  // namespace gsalert::obs
