#include "obs/profiler.h"

#include <cstdio>

#include "obs/metrics_registry.h"

namespace gsalert::obs {

Profiler* Profiler::current_ = nullptr;

Profiler::~Profiler() {
  if (current_ == this) current_ = nullptr;
}

void Profiler::enable() {
  if (installed_) return;
  // Calibrate what one enter/exit pair costs on this machine, right now,
  // against this tree. The calibration frames are removed afterwards so
  // they don't pollute the report, but the measured per-scope price is
  // what overhead_fraction() charges every real scope with.
  constexpr int kCalibration = 4096;
  current_ = this;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kCalibration; ++i) {
    ProfileScope scope("(calibration)");
  }
  const auto t1 = std::chrono::steady_clock::now();
  per_scope_ns_ =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()) /
      kCalibration;
  root_.children.erase("(calibration)");
  scopes_entered_ = 0;
  enabled_at_ = std::chrono::steady_clock::now();
  installed_ = true;
}

void Profiler::disable() {
  if (!installed_) return;
  wall_ns_ += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - enabled_at_)
          .count());
  installed_ = false;
  if (current_ == this) current_ = nullptr;
}

std::uint64_t Profiler::profiled_wall_ns() const {
  std::uint64_t ns = wall_ns_;
  if (installed_) {
    ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - enabled_at_)
            .count());
  }
  return ns;
}

double Profiler::overhead_fraction() const {
  const std::uint64_t wall = profiled_wall_ns();
  if (wall == 0) return 0.0;
  return (static_cast<double>(scopes_entered_) * per_scope_ns_) /
         static_cast<double>(wall);
}

Profiler::Node* Profiler::enter(const char* name) {
  auto it = cursor_->children.find(name);
  if (it == cursor_->children.end()) {
    auto node = std::make_unique<Node>();
    node->name = name;
    node->parent = cursor_;
    it = cursor_->children.emplace(node->name, std::move(node)).first;
  }
  cursor_ = it->second.get();
  scopes_entered_ += 1;
  return cursor_;
}

void Profiler::exit(Node* node, std::uint64_t elapsed_ns) {
  node->calls += 1;
  node->total_ns += elapsed_ns;
  // Scopes are strictly nested (RAII), so the cursor is either this node
  // or a descendant left dangling by an exception; walk up to the parent.
  cursor_ = node->parent;
}

namespace {
std::uint64_t children_total_ns(const Profiler::Node& node) {
  std::uint64_t ns = 0;
  for (const auto& [name, child] : node.children) ns += child->total_ns;
  return ns;
}
}  // namespace

void Profiler::collapse(const Node& node, std::string prefix,
                        std::string* out) const {
  if (&node != &root_) {
    prefix = prefix.empty() ? node.name : prefix + ";" + node.name;
    const std::uint64_t child_ns = children_total_ns(node);
    const std::uint64_t self_ns =
        node.total_ns > child_ns ? node.total_ns - child_ns : 0;
    char buf[32];
    std::snprintf(buf, sizeof buf, " %llu\n",
                  static_cast<unsigned long long>(self_ns / 1000));
    *out += prefix + buf;
  }
  for (const auto& [name, child] : node.children) {
    collapse(*child, prefix, out);
  }
}

std::string Profiler::collapsed_stacks() const {
  std::string out;
  collapse(root_, "", &out);
  return out;
}

void Profiler::tree(const Node& node, int depth, std::string* out) const {
  if (&node != &root_) {
    const std::uint64_t child_ns = children_total_ns(node);
    const std::uint64_t self_ns =
        node.total_ns > child_ns ? node.total_ns - child_ns : 0;
    char buf[128];
    std::snprintf(buf, sizeof buf, " calls=%llu total_us=%llu self_us=%llu\n",
                  static_cast<unsigned long long>(node.calls),
                  static_cast<unsigned long long>(node.total_ns / 1000),
                  static_cast<unsigned long long>(self_ns / 1000));
    out->append(static_cast<std::size_t>(depth) * 2, ' ');
    *out += node.name + buf;
  }
  for (const auto& [name, child] : node.children) {
    tree(*child, &node == &root_ ? depth : depth + 1, out);
  }
}

std::string Profiler::call_tree() const {
  std::string out;
  tree(root_, 0, &out);
  return out;
}

namespace {
void export_node(const Profiler::Node& node, const std::string& prefix,
                 MetricsRegistry& registry) {
  for (const auto& [name, child] : node.children) {
    const std::string path =
        prefix.empty() ? child->name : prefix + ";" + child->name;
    registry.counter("profiler.scope.calls", {{"scope", path}}) +=
        child->calls;
    registry.counter("profiler.scope.total_us", {{"scope", path}}) +=
        child->total_ns / 1000;
    export_node(*child, path, registry);
  }
}
}  // namespace

void Profiler::export_to(MetricsRegistry& registry) const {
  export_node(root_, "", registry);
  registry.gauge("profiler.overhead_fraction") = overhead_fraction();
  registry.counter("profiler.scopes_entered") += scopes_entered_;
}

void Profiler::clear() {
  root_.children.clear();
  root_.calls = 0;
  root_.total_ns = 0;
  cursor_ = &root_;
  scopes_entered_ = 0;
  wall_ns_ = 0;
  if (installed_) enabled_at_ = std::chrono::steady_clock::now();
}

}  // namespace gsalert::obs
