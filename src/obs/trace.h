// Causal tracing core. A logical event (e.g. one publish) owns a trace;
// every packet it spawns — GDS flood hops, dedup drops, auxiliary-profile
// forwards, rename re-broadcasts, retries — is a span in that trace.
//
// The context (trace id, parent span id, hop count) rides inside
// wire::Envelope, so causality survives arbitrary store-and-forward
// hops. Instrumentation points guard on `obs::active()`: with no sink
// installed, the cost per message is one branch on a global.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.h"

namespace gsalert::obs {

/// Propagated alongside a message. trace_id == 0 means "untraced".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;  // parent for spans emitted under this context
  std::uint16_t hop = 0;      // network hops traversed so far

  bool traced() const { return trace_id != 0; }
};

using SpanArgs = std::vector<std::pair<std::string, std::string>>;

/// One recorded step in an event's life. `node` is where it happened
/// (a sim node name, not an address).
struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::uint16_t hop = 0;
  SimTime at;
  std::string name;  // "publish", "gds-broadcast", "gds-dup-drop", ...
  std::string node;
  SpanArgs args;
};

/// Receives spans as they are emitted (a Tracer, a FlightRecorder).
class SpanSink {
 public:
  virtual ~SpanSink() = default;
  virtual void on_span(const Span& span) = 0;
};

void add_sink(SpanSink* sink);
void remove_sink(SpanSink* sink);

/// True when at least one sink is installed. Check before building span
/// arguments so tracing is zero-cost when off.
bool active();

/// Restart the deterministic id allocator. Call at the start of a
/// tracing session so seed replays produce identical ids.
void reset_ids();

/// The context of the message currently being dispatched ({} outside a
/// TraceScope).
TraceContext current_context();

/// Record a span under the current context; starts a fresh trace when no
/// context is active. Returns the emitted span's context (propagate it
/// to children / stamp it onto outgoing envelopes). No-op when no sink
/// is installed — returns the current context unchanged.
TraceContext emit_span(std::string_view name, std::string_view node,
                       SimTime at, SpanArgs args = {});

/// Same, but under an explicit parent — for work replayed from stored
/// state (outbox retries) or attributed from packet metadata (network
/// drops) where the active context is not the right parent.
TraceContext emit_span_under(const TraceContext& parent,
                             std::string_view name, std::string_view node,
                             SimTime at, SpanArgs args = {});

/// RAII: makes `ctx` the active context for the current dispatch.
/// Nested scopes restore the outer context on destruction.
class TraceScope {
 public:
  explicit TraceScope(TraceContext ctx);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext saved_;
};

/// RAII sink registration.
class ScopedSink {
 public:
  explicit ScopedSink(SpanSink* sink) : sink_(sink) { add_sink(sink_); }
  ~ScopedSink() { remove_sink(sink_); }
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  SpanSink* sink_;
};

}  // namespace gsalert::obs
