// Labeled metrics with deterministic export. Hot paths keep their plain
// struct counters (free to bump); components expose a pull-style
// `collect_metrics(MetricsRegistry&)` that copies them in here under
// canonical names, and the registry is the one export layer — text
// snapshot for humans, JSON for the benches' BENCH_<name>.json files.
//
// Series are keyed by `name{k=v,...}` with label keys sorted, stored in
// an ordered map so snapshots are byte-stable across identical runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "obs/latency.h"

namespace gsalert::obs {

class MetricsRegistry {
 public:
  /// Find-or-create. References stay valid until reset() (std::map
  /// nodes are stable), so hot loops may cache them.
  std::uint64_t& counter(std::string_view name, const Labels& labels = {});
  double& gauge(std::string_view name, const Labels& labels = {});
  Histogram& histogram(std::string_view name, const Labels& labels = {});
  /// Log2-bucketed histogram (quantiles bucket-resolved; O(1) record).
  /// Exported in the same "histograms" JSON group as the exact kind.
  LatencyHistogram& latency(std::string_view name, const Labels& labels = {});

  void reset() { series_.clear(); }
  std::size_t series_count() const { return series_.size(); }

  /// "name{labels} = value" per line, key-sorted.
  std::string text_snapshot() const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}}
  std::string json() const;

  /// Canonical series key, e.g. `gds.deliveries{node=gds-1}`.
  static std::string series_key(std::string_view name, Labels labels);

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kLatency };
  struct Series {
    Kind kind;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    Histogram hist;
    LatencyHistogram lat;
  };

  Series& find_or_create(std::string_view name, const Labels& labels,
                         Kind kind);

  std::map<std::string, Series> series_;
};

}  // namespace gsalert::obs
