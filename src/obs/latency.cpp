#include "obs/latency.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/histogram.h"
#include "obs/metrics_registry.h"

namespace gsalert::obs {

// ---------- LatencyHistogram ------------------------------------------------

void LatencyHistogram::record(double value) {
  if (!(value >= 0.0)) value = 0.0;  // negatives and NaN clamp to bucket 0
  buckets_[log2_bucket_index(value)] += 1;
  count_ += 1;
  sum_ += value;
  max_ = std::max(max_, value);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

double LatencyHistogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // The true max is a tighter bound than 2^63 when the top occupied
      // bucket answers the quantile.
      return std::min(log2_bucket_bound(i), std::max(max_, 1.0));
    }
  }
  return max_;
}

std::string LatencyHistogram::summary() const {
  if (count_ == 0) return "count=0";
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "count=%llu mean=%.6g p50=%.6g p95=%.6g p99=%.6g "
                "p999=%.6g max=%.6g",
                static_cast<unsigned long long>(count_), mean(), p50(), p95(),
                p99(), p999(), max());
  return buf;
}

std::string LatencyHistogram::json() const {
  if (count_ == 0) return "{\"count\":0}";
  char buf[224];
  std::snprintf(buf, sizeof buf,
                "{\"count\":%llu,\"mean\":%.6g,\"p50\":%.6g,\"p95\":%.6g,"
                "\"p99\":%.6g,\"p999\":%.6g,\"max\":%.6g,\"buckets\":[",
                static_cast<unsigned long long>(count_), mean(), p50(), p95(),
                p99(), p999(), max());
  std::string out = buf;
  bool first = true;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    char b[64];
    std::snprintf(b, sizeof b, "%s[%.6g,%llu]", first ? "" : ",",
                  log2_bucket_bound(i),
                  static_cast<unsigned long long>(buckets_[i]));
    out += b;
    first = false;
  }
  out += "]}";
  return out;
}

void LatencyHistogram::clear() { *this = LatencyHistogram{}; }

// ---------- LatencyBreakdown ------------------------------------------------

void LatencyBreakdown::merge(const LatencyBreakdown& other) {
  e2e_ms.merge(other.e2e_ms);
  flood_ms.merge(other.flood_ms);
  park_dwell_ms.merge(other.park_dwell_ms);
  retransmit_delay_ms.merge(other.retransmit_delay_ms);
  match_cpu_us.merge(other.match_cpu_us);
  fsync_us.merge(other.fsync_us);
  notify_hops.merge(other.notify_hops);
}

void LatencyBreakdown::export_to(MetricsRegistry& registry,
                                 const Labels& labels) const {
  registry.latency("latency.e2e_ms", labels).merge(e2e_ms);
  registry.latency("latency.stage.flood_ms", labels).merge(flood_ms);
  registry.latency("latency.stage.park_dwell_ms", labels)
      .merge(park_dwell_ms);
  registry.latency("latency.stage.retransmit_delay_ms", labels)
      .merge(retransmit_delay_ms);
  registry.latency("latency.stage.match_cpu_us", labels).merge(match_cpu_us);
  registry.latency("latency.stage.fsync_us", labels).merge(fsync_us);
  registry.latency("latency.notify_hops", labels).merge(notify_hops);
}

// ---------- LatencyTracker --------------------------------------------------

namespace {
const std::string* find_arg(const Span& span, const char* key) {
  for (const auto& [k, v] : span.args) {
    if (k == key) return &v;
  }
  return nullptr;
}
}  // namespace

double LatencyTracker::trace_start_ms(std::uint64_t trace_id,
                                      bool* known) const {
  const TraceStart& slot = starts_[trace_id % kMaxTraces];
  *known = slot.trace_id == trace_id && trace_id != 0;
  return slot.at_ms;
}

void LatencyTracker::on_span(const Span& span) {
  if (span.trace_id == 0) return;
  const double at_ms = span.at.as_millis();
  if (span.name == "publish") {
    // The first publish of a trace is the user-visible t0. Rename
    // cascades re-publish under the same trace later — keep the origin.
    TraceStart& slot = starts_[span.trace_id % kMaxTraces];
    if (slot.trace_id != span.trace_id) {
      slot.trace_id = span.trace_id;
      slot.at_ms = at_ms;
      traces_started_ += 1;
    }
    return;
  }
  if (span.name == "notify") {
    bool known = false;
    const double start = trace_start_ms(span.trace_id, &known);
    if (!known) {
      orphan_spans_ += 1;
      return;
    }
    notifies_seen_ += 1;
    breakdown_.e2e_ms.record(at_ms - start);
    breakdown_.notify_hops.record(static_cast<double>(span.hop));
    return;
  }
  if (span.name == "gds-deliver") {
    bool known = false;
    const double start = trace_start_ms(span.trace_id, &known);
    if (known) {
      breakdown_.flood_ms.record(at_ms - start);
    } else {
      orphan_spans_ += 1;
    }
    return;
  }
  if (span.name == "gds-park-flush") {
    if (const std::string* dwell = find_arg(span, "dwell_ms")) {
      breakdown_.park_dwell_ms.record(std::strtod(dwell->c_str(), nullptr));
    }
    return;
  }
  if (span.name == "retry") {
    if (const std::string* since = find_arg(span, "since_ms")) {
      breakdown_.retransmit_delay_ms.record(
          std::strtod(since->c_str(), nullptr));
    }
    return;
  }
}

void LatencyTracker::clear() {
  starts_.fill(TraceStart{});
  breakdown_ = LatencyBreakdown{};
  traces_started_ = 0;
  notifies_seen_ = 0;
  orphan_spans_ = 0;
}

}  // namespace gsalert::obs
