#include "obs/tracer.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/json_util.h"

namespace gsalert::obs {

namespace {

std::string args_suffix(const Span& span) {
  std::string out;
  for (const auto& [key, value] : span.args) {
    out += " " + key + "=" + value;
  }
  return out;
}

}  // namespace

std::vector<std::uint64_t> Tracer::trace_ids() const {
  std::vector<std::uint64_t> ids;
  for (const Span& span : spans_) ids.push_back(span.trace_id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::string Tracer::chrome_trace_json() const {
  // One pid for the whole sim; one tid per node, numbered in
  // first-appearance order with a thread_name metadata record each.
  std::map<std::string, int> tids;
  for (const Span& span : spans_) {
    tids.emplace(span.node, static_cast<int>(tids.size()) + 1);
  }
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [node, tid] : tids) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << detail::json_escape(node) << "\"}}";
  }
  for (const Span& span : spans_) {
    if (!first) os << ",";
    first = false;
    // Complete ("X") events with a token 1us duration: instants render
    // poorly at sim timescales, and our spans are points, not intervals.
    os << "{\"name\":\"" << detail::json_escape(span.name)
       << "\",\"cat\":\"trace-" << span.trace_id
       << "\",\"ph\":\"X\",\"ts\":" << span.at.as_micros()
       << ",\"dur\":1,\"pid\":1,\"tid\":" << tids[span.node]
       << ",\"args\":{\"trace_id\":" << span.trace_id
       << ",\"span_id\":" << span.span_id
       << ",\"parent_span_id\":" << span.parent_span_id
       << ",\"hop\":" << span.hop;
    for (const auto& [key, value] : span.args) {
      os << ",\"" << detail::json_escape(key) << "\":\""
         << detail::json_escape(value) << "\"";
    }
    os << "}}";
  }
  os << "]}\n";
  return os.str();
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_trace_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok && written != json.size()) std::fclose(f);
  return ok;
}

std::string Tracer::causal_tree(std::uint64_t trace_id) const {
  // Index this trace's spans by parent; children keep emission order,
  // which is already causal (the sim is single-threaded).
  std::map<std::uint64_t, std::vector<const Span*>> children;
  std::vector<const Span*> roots;
  for (const Span& span : spans_) {
    if (span.trace_id != trace_id) continue;
    if (span.parent_span_id == 0) {
      roots.push_back(&span);
    } else {
      children[span.parent_span_id].push_back(&span);
    }
  }
  // Orphans (parent span not recorded, e.g. sink installed mid-trace)
  // are promoted to roots so nothing is silently dropped.
  for (auto& [parent, spans] : children) {
    bool found = false;
    for (const Span& span : spans_) {
      found = found || (span.trace_id == trace_id && span.span_id == parent);
    }
    if (!found) {
      for (const Span* s : spans) roots.push_back(s);
      spans.clear();
    }
  }
  std::sort(roots.begin(), roots.end(),
            [](const Span* a, const Span* b) { return a->span_id < b->span_id; });

  std::ostringstream os;
  os << "trace " << trace_id << ":\n";
  std::vector<std::pair<const Span*, int>> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.emplace_back(*it, 1);
  }
  while (!stack.empty()) {
    const auto [span, depth] = stack.back();
    stack.pop_back();
    os << std::string(static_cast<std::size_t>(depth) * 2, ' ')
       << span->name << "@" << span->node;
    char at[32];
    std::snprintf(at, sizeof at, " [t=%.1fms", span->at.as_millis());
    os << at << " hop=" << span->hop << "]" << args_suffix(*span) << "\n";
    const auto kids = children.find(span->span_id);
    if (kids != children.end()) {
      for (auto it = kids->second.rbegin(); it != kids->second.rend(); ++it) {
        stack.emplace_back(*it, depth + 1);
      }
    }
  }
  return os.str();
}

std::string Tracer::causal_tree() const {
  std::string out;
  for (const std::uint64_t id : trace_ids()) out += causal_tree(id);
  return out;
}

}  // namespace gsalert::obs
