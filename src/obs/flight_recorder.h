// Bounded per-node ring of recent spans and log lines. Cheap enough to
// leave armed for every chaos run; when an invariant checker fires, the
// harness dumps it to turn "seed N failed" into a causal narrative
// naming the exact hop where the invariant broke.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "obs/trace.h"

namespace gsalert::obs {

class FlightRecorder : public SpanSink {
 public:
  explicit FlightRecorder(std::size_t per_node_capacity = 128)
      : capacity_(per_node_capacity) {}

  void on_span(const Span& span) override;

  /// Record a free-form line (log output, checker notes) under `node`.
  void note(SimTime at, const std::string& node, std::string line);

  /// Deterministic dump: nodes in name order, each node's entries in
  /// arrival order, with a drop count when the ring wrapped.
  std::string dump() const;

  void clear() { rings_.clear(); }
  std::size_t total_entries() const;

 private:
  struct Entry {
    SimTime at;
    std::string line;
  };
  struct Ring {
    std::deque<Entry> entries;
    std::uint64_t evicted = 0;
  };

  void push(const std::string& node, SimTime at, std::string line);

  std::size_t capacity_;
  std::map<std::string, Ring> rings_;
};

}  // namespace gsalert::obs
