#include "obs/trace.h"

#include <algorithm>

namespace gsalert::obs {

namespace {
// The simulation is single-threaded by design (discrete-event), so the
// trace state is plain globals: a short sink list, the active context,
// and a deterministic id counter.
std::vector<SpanSink*>& sinks() {
  static std::vector<SpanSink*> s;
  return s;
}
TraceContext g_active;
std::uint64_t g_next_id = 1;

TraceContext emit(const TraceContext& parent, std::string_view name,
                  std::string_view node, SimTime at, SpanArgs args) {
  if (sinks().empty()) return parent;
  Span span;
  span.trace_id = parent.traced() ? parent.trace_id : g_next_id++;
  span.span_id = g_next_id++;
  span.parent_span_id = parent.traced() ? parent.span_id : 0;
  span.hop = parent.hop;
  span.at = at;
  span.name = std::string{name};
  span.node = std::string{node};
  span.args = std::move(args);
  for (SpanSink* sink : sinks()) sink->on_span(span);
  return TraceContext{span.trace_id, span.span_id, span.hop};
}
}  // namespace

void add_sink(SpanSink* sink) { sinks().push_back(sink); }

void remove_sink(SpanSink* sink) {
  auto& s = sinks();
  s.erase(std::remove(s.begin(), s.end(), sink), s.end());
}

bool active() { return !sinks().empty(); }

void reset_ids() {
  g_next_id = 1;
  g_active = TraceContext{};
}

TraceContext current_context() { return g_active; }

TraceContext emit_span(std::string_view name, std::string_view node,
                       SimTime at, SpanArgs args) {
  return emit(g_active, name, node, at, std::move(args));
}

TraceContext emit_span_under(const TraceContext& parent,
                             std::string_view name, std::string_view node,
                             SimTime at, SpanArgs args) {
  return emit(parent, name, node, at, std::move(args));
}

TraceScope::TraceScope(TraceContext ctx) : saved_(g_active) {
  g_active = ctx;
}

TraceScope::~TraceScope() { g_active = saved_; }

}  // namespace gsalert::obs
