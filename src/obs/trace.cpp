#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <mutex>

namespace gsalert::obs {

namespace {
// The serial simulation is single-threaded, but the sharded kernel runs
// node callbacks on worker threads, so the trace state is partitioned:
// the active context is thread-local (each shard worker propagates its
// own event's context), the id counter is atomic (ids stay unique, and
// single-threaded allocation order — the deterministic case — is
// unchanged), and the sink list plus emission are serialized by a mutex
// so sink implementations stay single-threaded.
std::mutex& sink_mu() {
  static std::mutex mu;
  return mu;
}
std::vector<SpanSink*>& sinks() {
  static std::vector<SpanSink*> s;
  return s;
}
std::atomic<bool> g_active_sinks{false};
thread_local TraceContext g_active;
std::atomic<std::uint64_t> g_next_id{1};

TraceContext emit(const TraceContext& parent, std::string_view name,
                  std::string_view node, SimTime at, SpanArgs args) {
  if (!g_active_sinks.load(std::memory_order_relaxed)) return parent;
  Span span;
  span.trace_id = parent.traced()
                      ? parent.trace_id
                      : g_next_id.fetch_add(1, std::memory_order_relaxed);
  span.span_id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  span.parent_span_id = parent.traced() ? parent.span_id : 0;
  span.hop = parent.hop;
  span.at = at;
  span.name = std::string{name};
  span.node = std::string{node};
  span.args = std::move(args);
  std::lock_guard<std::mutex> lock(sink_mu());
  for (SpanSink* sink : sinks()) sink->on_span(span);
  return TraceContext{span.trace_id, span.span_id, span.hop};
}
}  // namespace

void add_sink(SpanSink* sink) {
  std::lock_guard<std::mutex> lock(sink_mu());
  sinks().push_back(sink);
  g_active_sinks.store(true, std::memory_order_relaxed);
}

void remove_sink(SpanSink* sink) {
  std::lock_guard<std::mutex> lock(sink_mu());
  auto& s = sinks();
  s.erase(std::remove(s.begin(), s.end(), sink), s.end());
  g_active_sinks.store(!s.empty(), std::memory_order_relaxed);
}

bool active() { return g_active_sinks.load(std::memory_order_relaxed); }

void reset_ids() {
  g_next_id.store(1, std::memory_order_relaxed);
  g_active = TraceContext{};
}

TraceContext current_context() { return g_active; }

TraceContext emit_span(std::string_view name, std::string_view node,
                       SimTime at, SpanArgs args) {
  return emit(g_active, name, node, at, std::move(args));
}

TraceContext emit_span_under(const TraceContext& parent,
                             std::string_view name, std::string_view node,
                             SimTime at, SpanArgs args) {
  return emit(parent, name, node, at, std::move(args));
}

TraceScope::TraceScope(TraceContext ctx) : saved_(g_active) {
  g_active = ctx;
}

TraceScope::~TraceScope() { g_active = saved_; }

}  // namespace gsalert::obs
