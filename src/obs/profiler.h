// Continuous profiler: scoped wall-clock timers aggregating into a call
// tree, with collapsed-stack (flamegraph) and indented-tree text export.
//
// Design constraints, in order:
//  - Zero-cost when off: GSALERT_PROFILE compiles to one branch on a
//    global pointer. No global is ever touched on the hot path when no
//    profiler is installed.
//  - Honest about its own cost when on: enable() calibrates the price of
//    one enter/exit pair, every scope is counted, and
//    overhead_fraction() reports (scopes x per-scope cost) / profiled
//    wall time. tests/perf_budget.txt gates this under
//    max_profiler_overhead_pct (5%).
//  - Single-threaded by design, like the simulator it profiles. The
//    current-node pointer is plain state, not thread-local.
//
// Usage:
//   obs::Profiler prof;
//   prof.enable();                       // installs as the global profiler
//   ...run...
//   prof.disable();
//   std::puts(prof.call_tree().c_str()); // human tree
//   prof.collapsed_stacks();             // "sim.dispatch;alerting.match 123\n"
//                                        // (flamegraph.pl-compatible, us)
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace gsalert::obs {

class MetricsRegistry;

class Profiler {
 public:
  Profiler() = default;
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Install as the process-wide profiler (replacing any other) and
  /// calibrate per-scope overhead. Timers start aggregating immediately.
  void enable();
  /// Uninstall (if installed) and close the profiled wall-time window.
  void disable();
  bool enabled() const { return installed_; }

  /// The currently installed profiler, or nullptr. ProfileScope's off
  /// path reads only this.
  static Profiler* current() { return current_; }

  // --- results (valid after disable(), or mid-run) -----------------------
  /// Collapsed-stack lines "root;child;leaf <self_us>\n", path-sorted —
  /// feed to flamegraph.pl / speedscope. Frames with zero self time are
  /// still emitted when they have calls (they carry the shape).
  std::string collapsed_stacks() const;
  /// Indented call tree with calls / total / self per frame.
  std::string call_tree() const;
  /// Export under profiler.* (scope totals as counters in microseconds,
  /// overhead as a gauge) for bench JSON.
  void export_to(MetricsRegistry& registry) const;

  /// Estimated fraction of profiled wall time spent in the profiler
  /// itself: scopes_entered() x calibrated per-scope cost / wall window.
  /// 0 when never enabled.
  double overhead_fraction() const;
  std::uint64_t scopes_entered() const { return scopes_entered_; }
  /// Calibrated cost of one enter/exit pair, nanoseconds.
  double per_scope_overhead_ns() const { return per_scope_ns_; }
  /// Wall nanoseconds between enable() and disable() (or now).
  std::uint64_t profiled_wall_ns() const;

  void clear();

  // --- scope plumbing (ProfileScope only) --------------------------------
  struct Node {
    std::string name;
    Node* parent = nullptr;
    std::map<std::string, std::unique_ptr<Node>, std::less<>> children;
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
  };
  Node* enter(const char* name);
  void exit(Node* node, std::uint64_t elapsed_ns);

 private:
  void collapse(const Node& node, std::string prefix, std::string* out) const;
  void tree(const Node& node, int depth, std::string* out) const;

  static Profiler* current_;

  Node root_{"(root)"};
  Node* cursor_ = &root_;
  bool installed_ = false;
  double per_scope_ns_ = 0.0;
  std::uint64_t scopes_entered_ = 0;
  std::chrono::steady_clock::time_point enabled_at_{};
  std::uint64_t wall_ns_ = 0;  // closed window(s) before the live one
};

/// RAII scope timer. With no profiler installed: one branch, nothing else.
class ProfileScope {
 public:
  explicit ProfileScope(const char* name) {
    Profiler* p = Profiler::current();
    if (p != nullptr) {
      profiler_ = p;
      node_ = p->enter(name);
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ProfileScope() {
    if (profiler_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      profiler_->exit(
          node_, static_cast<std::uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         elapsed)
                         .count()));
    }
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  Profiler* profiler_ = nullptr;
  Profiler::Node* node_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

#define GSALERT_PROFILE_CAT2(a, b) a##b
#define GSALERT_PROFILE_CAT(a, b) GSALERT_PROFILE_CAT2(a, b)
/// Time the rest of the enclosing block as one profiler frame.
#define GSALERT_PROFILE(name) \
  ::gsalert::obs::ProfileScope GSALERT_PROFILE_CAT(gsalert_prof_, \
                                                   __LINE__)(name)

}  // namespace gsalert::obs
