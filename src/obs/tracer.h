// In-memory span store with two export formats:
//  - Chrome trace_event JSON (load in chrome://tracing or Perfetto);
//    one tid per sim node, ts in virtual microseconds.
//  - A human-readable causal tree per trace, e.g.
//      publish@London [t=1200.0ms] event=London#4
//        gds-broadcast@gds-1 hop=1
//          gds-dup-drop@gds-2 hop=2
//          rename@Hamilton via=London.E
// Install for a run via obs::ScopedSink (and obs::reset_ids() first for
// deterministic ids).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace gsalert::obs {

class Tracer : public SpanSink {
 public:
  void on_span(const Span& span) override { spans_.push_back(span); }

  const std::vector<Span>& spans() const { return spans_; }
  void clear() { spans_.clear(); }

  /// Distinct trace ids, ascending.
  std::vector<std::uint64_t> trace_ids() const;

  /// Chrome trace_event JSON for all recorded spans.
  std::string chrome_trace_json() const;

  /// Writes chrome_trace_json() to `path`; false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  /// Indented causal tree for every trace (or one trace).
  std::string causal_tree() const;
  std::string causal_tree(std::uint64_t trace_id) const;

 private:
  std::vector<Span> spans_;
};

}  // namespace gsalert::obs
