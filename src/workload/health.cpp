#include "workload/health.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "journal/journal.h"
#include "obs/metrics_registry.h"
#include "workload/scenario.h"

namespace gsalert::workload {

namespace {

struct NodeHealth {
  std::string node;
  std::string role;  // "server" | "gds" | "client"
  std::uint64_t unacked = 0;     // reliable-channel outbox depth
  std::uint64_t retransmits = 0; // endpoint + channel resends
  std::uint64_t timeouts = 0;
  std::uint64_t parked = 0;      // store-and-forward frames in custody
  std::uint64_t delivery_queue = 0;   // queued delivery entries (all clients)
  std::uint64_t delivery_spilled = 0; // entries dropped at queue capacity
  std::uint64_t journal_pending = 0;  // bytes appended, not yet fsynced
  std::uint64_t journal_log = 0;      // total log bytes
};

std::vector<NodeHealth> gather(Scenario& scenario) {
  std::vector<NodeHealth> rows;
  const auto& services = scenario.gsalert();
  const auto& servers = scenario.servers();
  for (std::size_t i = 0; i < servers.size(); ++i) {
    gsnet::GreenstoneServer* server = servers[i];
    NodeHealth row;
    row.node = server->name();
    row.role = "server";
    row.retransmits = server->endpoint_stats().retransmits +
                      server->gds().endpoint_stats().retransmits;
    row.timeouts = server->endpoint_stats().timeouts +
                   server->gds().endpoint_stats().timeouts;
    if (i < services.size()) {
      row.unacked = services[i]->outbox_size();
      row.retransmits += services[i]->channel_stats().retransmits;
      row.delivery_queue = services[i]->delivery().queue_depth_total();
      row.delivery_spilled = services[i]->delivery().stats().spilled;
    }
    if (const journal::Journal* j = server->journal()) {
      row.journal_pending = j->pending_bytes();
      row.journal_log = j->log_bytes();
    }
    rows.push_back(std::move(row));
  }
  for (const gds::GdsServer* node : scenario.gds_tree().nodes) {
    NodeHealth row;
    row.node = node->name();
    row.role = "gds";
    row.parked = node->parked_count();
    if (const journal::Journal* j = node->journal()) {
      row.journal_pending = j->pending_bytes();
      row.journal_log = j->log_bytes();
    }
    rows.push_back(std::move(row));
  }
  for (const alerting::Client* client : scenario.clients()) {
    NodeHealth row;
    row.node = client->name();
    row.role = "client";
    row.retransmits = client->endpoint_stats().retransmits;
    row.timeouts = client->endpoint_stats().timeouts;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const NodeHealth& a, const NodeHealth& b) {
              return a.node < b.node;
            });
  return rows;
}

}  // namespace

std::string health_scoreboard(Scenario& scenario) {
  std::string out =
      "health scoreboard:\n"
      "  node            role    unacked   rtx  tmout  parked  dqueue  "
      "spill  jrnl_pend  jrnl_log\n";
  for (const NodeHealth& row : gather(scenario)) {
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "  %-15s %-7s %7llu %5llu %6llu %7llu %7llu %6llu %10llu "
                  "%9llu\n",
                  row.node.c_str(), row.role.c_str(),
                  static_cast<unsigned long long>(row.unacked),
                  static_cast<unsigned long long>(row.retransmits),
                  static_cast<unsigned long long>(row.timeouts),
                  static_cast<unsigned long long>(row.parked),
                  static_cast<unsigned long long>(row.delivery_queue),
                  static_cast<unsigned long long>(row.delivery_spilled),
                  static_cast<unsigned long long>(row.journal_pending),
                  static_cast<unsigned long long>(row.journal_log));
    out += buf;
  }
  return out;
}

void collect_health(Scenario& scenario, obs::MetricsRegistry& registry) {
  for (const NodeHealth& row : gather(scenario)) {
    const obs::Labels labels{{"node", row.node}};
    registry.gauge("health.node.unacked", labels) =
        static_cast<double>(row.unacked);
    registry.gauge("health.node.retransmits", labels) =
        static_cast<double>(row.retransmits);
    registry.gauge("health.node.timeouts", labels) =
        static_cast<double>(row.timeouts);
    registry.gauge("health.node.parked", labels) =
        static_cast<double>(row.parked);
    registry.gauge("health.node.delivery_queue", labels) =
        static_cast<double>(row.delivery_queue);
    registry.gauge("health.node.delivery_spilled", labels) =
        static_cast<double>(row.delivery_spilled);
    registry.gauge("health.node.journal_pending_bytes", labels) =
        static_cast<double>(row.journal_pending);
    registry.gauge("health.node.journal_log_bytes", labels) =
        static_cast<double>(row.journal_log);
  }
}

}  // namespace gsalert::workload
