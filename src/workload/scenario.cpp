#include "workload/scenario.h"

#include <algorithm>
#include <cassert>

#include "journal/journal.h"
#include "obs/metrics_registry.h"
#include "profiles/event_context.h"
#include "profiles/parser.h"
#include "sim/sharding.h"

namespace gsalert::workload {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kGsAlert:
      return "gsalert";
    case Strategy::kCentralized:
      return "centralized";
    case Strategy::kProfileFlooding:
      return "profile-flood";
    case Strategy::kRendezvous:
      return "rendezvous";
    case Strategy::kGsFlooding:
      return "gs-flood";
  }
  return "?";
}

namespace {
// Uniquely identifies a logical announcement as one client should see it:
// the attribution ref plus the via chain plus the physical rebuild behind
// it. Without the via/physical parts, a renamed event can collide with a
// direct rebuild of the super (or with a rename from a different sub)
// that happens to share the same (ref, build_version) pair.
std::string expect_key(std::size_t client, const docmodel::Event& event) {
  std::string via;
  for (const std::string& hop : event.via) via += hop + ">";
  return std::to_string(client) + "#" + event.collection.str() + "#" + via +
         "#" + event.physical_origin.str() + "#" +
         std::to_string(event.build_version);
}
std::string event_key(const std::string& ref, std::uint64_t version) {
  return ref + "#" + std::to_string(version);
}
}  // namespace

Scenario::Scenario(ScenarioConfig config)
    : config_(config), rng_(config.seed), net_(config.seed ^ 0x5CE) {
  net_.set_default_path(config_.path);
  if (!config_.sim_topology.empty()) {
    std::optional<sim::Topology> topo =
        sim::topology_by_name(config_.sim_topology);
    if (!topo.has_value()) {
      throw std::invalid_argument("unknown sim_topology: " +
                                  config_.sim_topology);
    }
    net_.set_topology(*std::move(topo));
  }
  build_world();
  apply_sharding();
  net_.start();
  settle(SimTime::millis(200));
}

void Scenario::build_world() {
  const int n = config_.n_servers;
  topology_ = config_.explicit_topology.has_value()
                  ? *config_.explicit_topology
                  : make_topology(rng_, n, config_.topology);
  assert(topology_.n_servers == n);

  // Strategy-specific infrastructure first, so servers can reference it.
  if (config_.strategy == Strategy::kGsAlert) {
    const int fanout = std::max(2, config_.gds_fanout);
    int leaves_needed = std::max(1, (n + 3) / 4);
    int depth = 1, leaves = 1;
    while (leaves < leaves_needed) {
      leaves *= fanout;
      ++depth;
    }
    depth = std::max(depth, 2);
    gds::GdsConfig gds_config;
    gds_config.dedup_enabled = config_.gds_dedup;
    gds_config.adaptive_parent = config_.adaptive_tree;
    if (config_.journal_compact_bytes != 0) {
      gds_config.journal.compact_threshold_bytes =
          config_.journal_compact_bytes;
    }
    gds_tree_ = gds::build_tree(net_, fanout, depth, gds_config);
  } else if (config_.strategy == Strategy::kCentralized) {
    central_ = net_.make_node<baselines::CentralServer>("central");
  } else if (config_.strategy == Strategy::kRendezvous) {
    for (int i = 0; i < config_.n_rendezvous; ++i) {
      rv_brokers_.push_back(net_.make_node<baselines::RendezvousBroker>(
          "rv" + std::to_string(i)));
    }
  }

  std::vector<NodeId> rv_ids;
  for (auto* b : rv_brokers_) rv_ids.push_back(b->id());

  for (int i = 0; i < n; ++i) {
    const std::string host = host_name(i);
    hosts_.push_back(host);
    gsnet::ServerConfig server_config;
    if (config_.journal_compact_bytes != 0) {
      server_config.journal.compact_threshold_bytes =
          config_.journal_compact_bytes;
    }
    auto* server =
        net_.make_node<gsnet::GreenstoneServer>(host, server_config);
    switch (config_.strategy) {
      case Strategy::kGsAlert: {
        auto ext =
            std::make_unique<alerting::AlertingService>(config_.alerting);
        gsalert_.push_back(ext.get());
        server->set_extension(std::move(ext));
        server->attach_gds(
            gds_tree_.leaf_for(static_cast<std::size_t>(i))->id());
        break;
      }
      case Strategy::kCentralized:
        server->set_extension(
            std::make_unique<baselines::CentralizedAlerting>(central_->id()));
        break;
      case Strategy::kProfileFlooding: {
        auto ext = std::make_unique<baselines::ProfileFloodAlerting>(
            config_.b2_covering);
        pflood_.push_back(ext.get());
        server->set_extension(std::move(ext));
        break;
      }
      case Strategy::kRendezvous:
        server->set_extension(
            std::make_unique<baselines::RendezvousAlerting>(rv_ids));
        break;
      case Strategy::kGsFlooding: {
        // gds_dedup doubles as the dedup ablation switch for B4.
        auto ext =
            std::make_unique<baselines::GsFloodAlerting>(config_.gds_dedup);
        gsflood_.push_back(ext.get());
        server->set_extension(std::move(ext));
        break;
      }
    }
    servers_.push_back(server);
    schemas_.push_back(MetadataSchema::for_host(host, config_.seed));
    collgens_.push_back(std::make_unique<CollectionGen>(
        rng_, schemas_.back(), config_.collection));
    collections_.emplace_back();

    for (int c = 0; c < config_.clients_per_server; ++c) {
      auto* client = net_.make_node<alerting::Client>(
          "client-" + std::to_string(i) + "-" + std::to_string(c));
      client->set_home(server->id());
      clients_.push_back(client);
    }
  }
  wire_links();
}

void Scenario::apply_sharding() {
  if (config_.sim_shards <= 1) return;
  const std::size_t n = net_.node_count();
  const std::size_t k = static_cast<std::size_t>(config_.sim_shards);
  if (config_.strategy != Strategy::kGsAlert) {
    // Baselines have no stratum tree; contiguous blocks at least keep
    // each server's clients adjacent (they are created together).
    net_.set_shards(k, sim::shard_contiguous(n, k));
    return;
  }
  // Shard along the GDS stratum tree: each subtree under a root child is
  // one unit, GS servers ride with their attached GDS leaf, clients with
  // their home server — so flood traffic stays intra-shard and only
  // root<->stratum-2 edges cross.
  std::vector<std::uint32_t> parent(n, 0);
  const auto set_parent = [&parent](NodeId child, NodeId p) {
    parent[child.value() - 1] = p.value();
  };
  for (const gds::GdsServer* g : gds_tree_.nodes) {
    if (g->parent().valid()) set_parent(g->id(), g->parent());
  }
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    set_parent(servers_[i]->id(), gds_tree_.leaf_for(i)->id());
  }
  for (const alerting::Client* c : clients_) {
    set_parent(c->id(), c->home());
  }
  net_.set_shards(k, sim::shard_by_tree(n, parent, k));
}

void Scenario::wire_links() {
  // Every server can unicast to every other by name (internet semantics);
  // the overlay links below are what the flooding strategies route along.
  for (auto* a : servers_) {
    for (auto* b : servers_) {
      if (a != b) a->set_host_ref(b->name(), b->id());
    }
  }
  for (const auto& [x, y] : topology_.links) {
    const auto sx = static_cast<std::size_t>(x);
    const auto sy = static_cast<std::size_t>(y);
    if (config_.strategy == Strategy::kProfileFlooding) {
      pflood_[sx]->add_neighbor(servers_[sy]->name(), servers_[sy]->id());
      pflood_[sy]->add_neighbor(servers_[sx]->name(), servers_[sx]->id());
    } else if (config_.strategy == Strategy::kGsFlooding) {
      gsflood_[sx]->add_neighbor(servers_[sy]->name(), servers_[sy]->id());
      gsflood_[sy]->add_neighbor(servers_[sx]->name(), servers_[sx]->id());
    }
  }
}

void Scenario::setup_collections() {
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    for (int c = 0; c < config_.collections_per_server; ++c) {
      const std::string name = "C" + std::to_string(c);
      docmodel::CollectionConfig cfg = collgens_[s]->make_config(name);
      docmodel::DataSet data =
          collgens_[s]->make_data_set(next_doc_id_, config_.collection.docs);
      next_doc_id_ += static_cast<DocumentId>(config_.collection.docs);
      CollState state{name, data.docs()};
      collections_[s].push_back(std::move(state));
      all_collections_.push_back(CollectionRef{servers_[s]->name(), name});
      const Status st = servers_[s]->add_collection(std::move(cfg),
                                                    std::move(data));
      assert(st.is_ok());
      (void)st;
    }
  }
  settle(SimTime::seconds(1));
}

void Scenario::setup_distributed(int links) {
  assert(config_.strategy == Strategy::kGsAlert);
  if (servers_.size() < 2) return;
  for (int attempt = 0; links > 0 && attempt < links * 8; ++attempt) {
    // Super on a lower-indexed server than the sub keeps the include
    // graph acyclic even across chained links.
    const std::size_t sub_server =
        1 + rng_.index(servers_.size() - 1);
    const std::size_t super_server = rng_.index(sub_server);
    const CollectionRef super{
        servers_[super_server]->name(),
        collections_[super_server]
            [rng_.index(collections_[super_server].size())].name};
    const CollectionRef sub{
        servers_[sub_server]->name(),
        collections_[sub_server][rng_.index(collections_[sub_server].size())]
            .name};
    const Status st = servers_[super_server]->add_sub_collection(super.name,
                                                                 sub);
    if (!st.is_ok()) continue;  // duplicate link drawn; redraw
    dist_links_.emplace_back(super, sub);
    --links;
  }
  // Let the auxiliary profiles install (reliable, so one retry interval
  // is plenty in the healthy setup phase).
  settle(SimTime::seconds(3));
}

void Scenario::subscribe(std::size_t client_index, const std::string& text) {
  auto parsed = profiles::parse_profile(text);
  assert(parsed.ok());
  TrackedSub sub;
  sub.client_index = client_index;
  sub.text = text;
  sub.parsed = std::move(parsed).take();
  const std::size_t slot = subs_.size();
  subs_.push_back(std::move(sub));
  clients_[client_index]->subscribe(
      text, [this, slot](Result<SubscriptionId> r) {
        if (r.ok()) subs_[slot].id = r.value();
      });
}

void Scenario::subscribe_all(int n) {
  ProfileGen gen{rng_, config_.profile};
  for (std::size_t c = 0; c < clients_.size(); ++c) {
    for (int k = 0; k < n; ++k) {
      subscribe(c, gen.make_profile(hosts_, all_collections_, schemas_));
    }
  }
}

bool Scenario::cancel_random() {
  // Only subscriptions whose home server is currently reachable from its
  // client are candidates: the paper's model has the user interacting
  // with *their* server (profiles live at the server the user talks to),
  // so a cancellation is a local, synchronous act — not a message that
  // can be silently lost to a partition.
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < subs_.size(); ++i) {
    const TrackedSub& sub = subs_[i];
    if (!sub.active || sub.id == 0) continue;
    const NodeId client = clients_[sub.client_index]->id();
    const NodeId home = clients_[sub.client_index]->home();
    if (!net_.is_up(home) || !net_.is_up(client) ||
        net_.is_blocked(client, home)) {
      continue;
    }
    active.push_back(i);
  }
  if (active.empty()) return false;
  TrackedSub& sub = subs_[active[rng_.index(active.size())]];
  clients_[sub.client_index]->cancel(sub.id);
  sub.active = false;
  sub.cancelled_at = net_.now();
  return true;
}

void Scenario::publish_rebuild(std::size_t server_index,
                               const std::string& coll, int fresh_docs) {
  auto& states = collections_[server_index];
  const auto it = std::find_if(states.begin(), states.end(),
                               [&](const CollState& s) {
                                 return s.name == coll;
                               });
  assert(it != states.end());
  std::vector<docmodel::Document> fresh;
  for (int i = 0; i < fresh_docs; ++i) {
    fresh.push_back(collgens_[server_index]->make_document(next_doc_id_++));
  }
  docmodel::DataSet data{it->docs};
  for (const auto& d : fresh) data.add(d);
  it->docs = data.docs();

  gsnet::GreenstoneServer* server = servers_[server_index];
  const Status st = server->rebuild_collection(coll, std::move(data));
  assert(st.is_ok());
  (void)st;
  const std::uint64_t version = server->collection(coll)->build_version;

  // Ground truth: what every active, acked profile should receive.
  docmodel::Event expected_event;
  expected_event.type = docmodel::EventType::kCollectionRebuilt;
  expected_event.collection = CollectionRef{server->name(), coll};
  expected_event.physical_origin = expected_event.collection;
  expected_event.build_version = version;
  expected_event.docs = fresh;

  auto record_expectations = [&](const docmodel::Event& event) {
    const profiles::EventContext ctx = profiles::EventContext::from(event);
    for (const TrackedSub& sub : subs_) {
      if (!sub.active || sub.id == 0) continue;
      if (sub.parsed.matches(ctx)) {
        expected_[expect_key(sub.client_index, event)] += 1;
      }
    }
    publish_time_.try_emplace(event_key(event.collection.str(), version),
                              net_.now());
  };
  record_expectations(expected_event);

  // Rename cascade (paper §4.2): every transitive super-collection of the
  // rebuilt collection re-announces the event attributed to itself. The
  // include graph is acyclic by construction (setup_distributed), and the
  // service's via-chain guard mirrors the cut conditions here.
  std::vector<docmodel::Event> frontier{expected_event};
  while (!frontier.empty()) {
    const docmodel::Event current = std::move(frontier.back());
    frontier.pop_back();
    for (const auto& [super, sub] : dist_links_) {
      if (sub != current.collection) continue;
      if (super == current.collection ||
          std::find(current.via.begin(), current.via.end(), super.str()) !=
              current.via.end()) {
        continue;
      }
      docmodel::Event renamed = current;
      renamed.collection = super;
      renamed.via.push_back(current.collection.str());
      record_expectations(renamed);
      frontier.push_back(std::move(renamed));
    }
  }
  events_published_ += 1;
}

void Scenario::publish_random_rebuild(int fresh_docs) {
  const std::size_t s = rng_.index(servers_.size());
  const std::size_t c = rng_.index(collections_[s].size());
  publish_rebuild(s, collections_[s][c].name, fresh_docs);
}

void Scenario::setup_virtual_collection(const std::string& vname) {
  std::vector<CollectionRef> members;
  members.reserve(servers_.size());
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    if (collections_[s].empty()) continue;
    members.push_back(
        CollectionRef{servers_[s]->name(), collections_[s].front().name});
  }
  for (gsnet::GreenstoneServer* server : servers_) {
    server->mediator().define_virtual(vname, members);
  }
}

void Scenario::mediated_query(
    std::size_t origin, const std::string& vname,
    const std::string& query_text,
    std::function<void(gsnet::MediatedQueryResult)> done) {
  assert(origin < servers_.size());
  servers_[origin]->mediator().query(vname, query_text, std::move(done));
}

void Scenario::settle(SimTime duration) {
  net_.run_until(net_.now() + duration);
}

std::vector<Scenario::SubRecord> Scenario::sub_records() const {
  std::vector<SubRecord> out;
  out.reserve(subs_.size());
  for (const TrackedSub& sub : subs_) {
    out.push_back(SubRecord{sub.client_index, sub.id, sub.active,
                            sub.cancelled_at});
  }
  return out;
}

std::optional<SimTime> Scenario::publish_time(const std::string& ref,
                                              std::uint64_t version) const {
  const auto it = publish_time_.find(event_key(ref, version));
  if (it == publish_time_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t Scenario::false_negatives_beyond(
    const std::unordered_map<std::string, std::uint64_t>& snapshot) const {
  std::unordered_map<std::string, std::uint64_t> delivered;
  for (std::size_t c = 0; c < clients_.size(); ++c) {
    for (const auto& note : clients_[c]->notifications()) {
      delivered[expect_key(c, note.event)] += 1;
    }
  }
  std::uint64_t missing = 0;
  for (const auto& [key, expected_count] : expected_) {
    const auto prior = snapshot.find(key);
    const std::uint64_t prior_count =
        prior == snapshot.end() ? 0 : prior->second;
    if (expected_count <= prior_count) continue;
    const auto got = delivered.find(key);
    const std::uint64_t got_count =
        got == delivered.end() ? 0 : got->second;
    // Deliveries first satisfy the pre-snapshot portion; only the
    // shortfall attributable to post-snapshot expectations counts.
    missing += expected_count - std::min(
        expected_count, std::max(got_count, prior_count));
  }
  return missing;
}

std::vector<std::string> Scenario::missing_keys_beyond(
    const std::unordered_map<std::string, std::uint64_t>& snapshot) const {
  std::unordered_map<std::string, std::uint64_t> delivered;
  for (std::size_t c = 0; c < clients_.size(); ++c) {
    for (const auto& note : clients_[c]->notifications()) {
      delivered[expect_key(c, note.event)] += 1;
    }
  }
  std::vector<std::string> keys;
  for (const auto& [key, expected_count] : expected_) {
    const auto prior = snapshot.find(key);
    const std::uint64_t prior_count =
        prior == snapshot.end() ? 0 : prior->second;
    if (expected_count <= prior_count) continue;
    const auto got = delivered.find(key);
    const std::uint64_t got_count =
        got == delivered.end() ? 0 : got->second;
    if (std::max(got_count, prior_count) >= expected_count) continue;
    keys.push_back(key + " (want " + std::to_string(expected_count) +
                   ", got " + std::to_string(got_count) + ")");
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

Outcome Scenario::outcome() const {
  Outcome out;
  out.events_published = events_published_;
  std::unordered_map<std::string, std::uint64_t> delivered;
  for (std::size_t c = 0; c < clients_.size(); ++c) {
    for (const auto& note : clients_[c]->notifications()) {
      delivered[expect_key(c, note.event)] += 1;
      const auto pub = publish_time_.find(event_key(
          note.event.collection.str(), note.event.build_version));
      if (pub != publish_time_.end()) {
        out.notification_latency_ms.record(
            (note.at - pub->second).as_millis());
      }
    }
  }
  for (const auto& [key, expected_count] : expected_) {
    out.expected_notifications += expected_count;
    const auto got = delivered.find(key);
    const std::uint64_t got_count =
        got == delivered.end() ? 0 : got->second;
    out.delivered_matching += std::min(expected_count, got_count);
    if (got_count < expected_count) {
      out.false_negatives += expected_count - got_count;
    }
  }
  for (const auto& [key, got_count] : delivered) {
    const auto exp = expected_.find(key);
    const std::uint64_t expected_count =
        exp == expected_.end() ? 0 : exp->second;
    if (got_count > expected_count) {
      out.false_positives += got_count - expected_count;
    }
  }
  out.messages_sent = net_.stats().sent;
  out.bytes_sent = net_.stats().bytes_sent;
  out.bytes_copied = net_.stats().bytes_copied;
  out.bytes_shared = net_.stats().bytes_shared;

  std::uint64_t max_load = 0, total_load = 0;
  const std::size_t n = net_.node_count();
  for (std::size_t i = 1; i <= n; ++i) {
    const auto& ns = net_.node_stats(NodeId{static_cast<std::uint32_t>(i)});
    const std::uint64_t load = ns.sent + ns.received;
    max_load = std::max(max_load, load);
    total_load += load;
  }
  if (n > 0 && total_load > 0) {
    out.max_over_mean_node_load =
        static_cast<double>(max_load) /
        (static_cast<double>(total_load) / static_cast<double>(n));
  }

  // Latency truth: sim-time stages from the armed span tracker, then the
  // wall-clock stages the services keep out of the deterministic metric
  // path (match CPU per filtered event, journal group-commit fsync).
  out.latency.merge(tracker_.breakdown());
  for (const alerting::AlertingService* service : gsalert_) {
    out.latency.match_cpu_us.merge(service->match_cpu_us());
  }
  for (gsnet::GreenstoneServer* server : servers_) {
    if (const journal::Journal* j = server->journal()) {
      out.latency.fsync_us.merge(j->fsync_us());
    }
  }
  for (const gds::GdsServer* node : gds_tree_.nodes) {
    if (const journal::Journal* j = node->journal()) {
      out.latency.fsync_us.merge(j->fsync_us());
    }
  }
  return out;
}

void Scenario::collect_metrics(obs::MetricsRegistry& registry) const {
  net_.collect_metrics(registry);
  for (const gds::GdsServer* node : gds_tree_.nodes) {
    node->collect_metrics(registry);
  }
  for (const alerting::AlertingService* service : gsalert_) {
    service->collect_metrics(registry);
  }
  // Request/reply endpoints (see docs/TRANSPORT.md): each server hosts
  // its own correlator plus its GDS client's; alerting clients one each.
  const auto endpoint_metrics = [&registry](
                                    const std::string& node,
                                    const transport::EndpointStats& st) {
    const obs::Labels labels{{"node", node}};
    registry.counter("transport.endpoint.requests", labels) += st.requests;
    registry.counter("transport.endpoint.replies", labels) += st.replies;
    registry.counter("transport.endpoint.retransmits", labels) +=
        st.retransmits;
    registry.counter("transport.endpoint.timeouts", labels) += st.timeouts;
    registry.counter("transport.endpoint.cancelled", labels) += st.cancelled;
    registry.counter("transport.endpoint.late_replies", labels) +=
        st.late_replies;
  };
  for (gsnet::GreenstoneServer* server : servers_) {
    endpoint_metrics(server->name(), server->endpoint_stats());
    endpoint_metrics(server->name(), server->gds().endpoint_stats());
    server->mediator().collect_metrics(registry);
    endpoint_metrics(server->name(), server->mediator().endpoint_stats());
  }
  for (const alerting::Client* client : clients_) {
    endpoint_metrics(client->name(), client->endpoint_stats());
  }
  registry.counter("scenario.events_published") = events_published_;
  registry.gauge("scenario.servers") =
      static_cast<double>(servers_.size());
  registry.gauge("scenario.clients") =
      static_cast<double>(clients_.size());
  registry.gauge("scenario.tracked_subscriptions") =
      static_cast<double>(subs_.size());
}

}  // namespace gsalert::workload
