// Synthetic workload generators standing in for real library collections,
// users and the public Greenstone server population (DESIGN.md §4).
// Everything is driven by a seeded Rng, so workloads are reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "docmodel/collection.h"
#include "docmodel/document.h"

namespace gsalert::workload {

/// Heterogeneity (paper §1, challenge 6): each host draws its own metadata
/// schema — attribute names and value pools differ across installations.
struct MetadataSchema {
  std::vector<std::string> attributes;            // e.g. {"title","creator"}
  std::vector<std::vector<std::string>> values;   // value pool per attribute

  /// Derive a schema for `host` deterministically from the seed.
  static MetadataSchema for_host(const std::string& host, std::uint64_t seed);
};

struct CollectionGenConfig {
  int docs = 20;
  int terms_per_doc = 12;
  int vocabulary = 500;
  double zipf_s = 1.1;  // term popularity skew
};

class CollectionGen {
 public:
  CollectionGen(Rng& rng, MetadataSchema schema, CollectionGenConfig config)
      : rng_(rng), schema_(std::move(schema)), config_(config) {}

  docmodel::Document make_document(DocumentId id);
  docmodel::DataSet make_data_set(DocumentId first_id, int count);
  /// A full collection config indexing every schema attribute.
  docmodel::CollectionConfig make_config(const std::string& name);

  const MetadataSchema& schema() const { return schema_; }

 private:
  Rng& rng_;
  MetadataSchema schema_;
  CollectionGenConfig config_;
};

/// Kinds of user profiles the generator produces, mirroring §5's usage
/// modes (alerting as continuous searching and browsing).
enum class ProfileKind {
  kHostWatch,        // host = X
  kCollectionWatch,  // ref = X.Y (continuous browsing of a collection)
  kTypeWatch,        // host = X AND type = t
  kMetadataWatch,    // creator = v (continuous browsing of a classifier)
  kQueryWatch,       // doc ~ "…" (continuous searching)
  kDocWatch,         // doc_id IN […] ("watch this" button)
};

struct ProfileGenConfig {
  /// Probability weights for the kinds above (normalized internally).
  std::vector<double> kind_weights = {1, 3, 1, 2, 2, 1};
  double collection_zipf_s = 0.9;  // popularity skew over collections
  /// Probability that a micro-level watch (metadata/query/doc) is scoped
  /// to one collection ("ref = X AND …") — how real users subscribe: they
  /// watch a collection for content, not the whole world. Scoping also
  /// gives the equality-preferred index its handle.
  double scope_probability = 0.8;
};

class ProfileGen {
 public:
  ProfileGen(Rng& rng, ProfileGenConfig config = {})
      : rng_(rng), config_(std::move(config)) {}

  /// Generate one profile over the given hosts/collections. `schemas[i]`
  /// is host i's metadata schema (for metadata/query watches).
  std::string make_profile(
      const std::vector<std::string>& hosts,
      const std::vector<CollectionRef>& collections,
      const std::vector<MetadataSchema>& schemas);

 private:
  ProfileKind pick_kind();

  Rng& rng_;
  ProfileGenConfig config_;
};

/// Subscriber-scale subscription shape for the delivery layer: user
/// interest follows a Zipf popularity curve over collections, so a few
/// hot collections accumulate most of the fan-out while the long tail
/// stays cold. This is the workload that stresses encode-once delivery,
/// credit backpressure and coalescing (docs/DELIVERY.md) — a rebuild of
/// the rank-0 collection must notify a large fraction of all users.
struct SubscriptionGenConfig {
  double zipf_s = 0.7;  // collection popularity skew
  /// Fraction of subscriptions that watch rebuild events only
  /// ("ref = X.Y AND type = collection_rebuilt") instead of the whole
  /// collection — those all fire together in a rebuild storm.
  double rebuild_watch_fraction = 0.2;
};

class SubscriptionGen {
 public:
  SubscriptionGen(Rng& rng, std::vector<CollectionRef> collections,
                  SubscriptionGenConfig config = {})
      : rng_(rng), collections_(std::move(collections)), config_(config) {}

  /// Zipf-ranked collection index for the next subscription
  /// (rank 0 = hottest).
  std::size_t pick_collection();
  /// Profile text for one subscription (collection watch or scoped
  /// rebuild watch over a Zipf-picked collection).
  std::string make_subscription();

  const std::vector<CollectionRef>& collections() const {
    return collections_;
  }

 private:
  Rng& rng_;
  std::vector<CollectionRef> collections_;
  SubscriptionGenConfig config_;
};

/// A Greenstone-network shape (paper §1, challenge 1): mostly solitary
/// servers, a few islands of linked ones, optional cycles.
struct GsTopology {
  int n_servers = 0;
  /// Undirected server-index pairs with a direct GS link.
  std::vector<std::pair<int, int>> links;

  /// Connected components (vectors of server indices).
  std::vector<std::vector<int>> components() const;
};

struct TopologyGenConfig {
  double solitary_fraction = 0.6;  // servers with no links at all
  int island_size = 4;             // linked groups of about this size
  double cycle_probability = 0.5;  // chance an island's chain is closed
};

GsTopology make_topology(Rng& rng, int n_servers, TopologyGenConfig config);

}  // namespace gsalert::workload
