#include "workload/chaos_runner.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/log.h"
#include "common/rng.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "workload/health.h"

namespace gsalert::workload {

namespace {

/// Cancellations are only issued inside windows this far clear of any
/// fault, so a cancel message cannot be silently lost (the paper models
/// cancellation as a local, synchronous act at the user's own server).
constexpr SimTime kCancelQuietWindow = SimTime::millis(600);

/// A notification for a cancelled subscription is only a violation when
/// the event was published this long after the cancel — inside the margin
/// the cancel message may legitimately still be in flight.
constexpr SimTime kCancelPropagationMargin = SimTime::millis(250);

constexpr std::size_t kMaxListedViolations = 8;

}  // namespace

// --- gds-exactly-once -------------------------------------------------------

/// Counts GDS broadcast deliveries per (destination server, origin, seq)
/// through the delivery observer hook; any count above one breaks the
/// §4.1 dedup guarantee (the bug the seed sweep must catch when dedup is
/// disabled).
class GdsExactlyOnceChecker : public sim::InvariantChecker {
 public:
  explicit GdsExactlyOnceChecker(Scenario& scenario) {
    for (gds::GdsServer* node : scenario.gds_tree().nodes) {
      node->set_delivery_observer(
          [this](const std::string& dst, const std::string& origin,
                 std::uint64_t seq) {
            counts_[dst + " <- " + origin + "#" + std::to_string(seq)] += 1;
          });
    }
  }

  std::string name() const override { return "gds-exactly-once"; }

  void check(std::vector<sim::Violation>& out) override {
    std::size_t over = 0;
    for (const auto& [key, count] : counts_) {
      if (count <= 1) continue;
      if (++over <= kMaxListedViolations) {
        out.push_back(sim::Violation{
            name(), "broadcast " + key + " delivered " +
                        std::to_string(count) + " times"});
      }
    }
    if (over > kMaxListedViolations) {
      out.push_back(sim::Violation{
          name(), "... and " +
                      std::to_string(over - kMaxListedViolations) +
                      " more duplicated deliveries"});
    }
  }

 private:
  std::map<std::string, std::uint64_t> counts_;  // ordered: stable output
};

// --- gds-tree-well-formed ---------------------------------------------------

/// Structural health of the directory tree at quiescence: no orphan
/// non-root nodes, no parent cycles other than the designed same-stratum
/// sibling ring (root failover), and every node that still serves
/// registered GS servers connected to the same component.
class TreeWellFormedChecker : public sim::InvariantChecker {
 public:
  explicit TreeWellFormedChecker(Scenario& scenario)
      : scenario_(scenario) {}

  std::string name() const override { return "gds-tree-well-formed"; }

  void check(std::vector<sim::Violation>& out) override {
    const auto& nodes = scenario_.gds_tree().nodes;
    if (nodes.empty()) return;
    sim::Network& net = scenario_.net();
    std::unordered_map<std::uint32_t, gds::GdsServer*> by_id;
    std::unordered_map<std::uint32_t, std::size_t> index_of;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      by_id[nodes[i]->id().value()] = nodes[i];
      index_of[nodes[i]->id().value()] = i;
    }

    std::vector<std::size_t> component(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) component[i] = i;
    std::function<std::size_t(std::size_t)> find_root =
        [&](std::size_t x) -> std::size_t {
      while (component[x] != x) {
        component[x] = component[component[x]];
        x = component[x];
      }
      return x;
    };

    for (gds::GdsServer* node : nodes) {
      if (!net.is_up(node->id())) continue;  // mid-fault check: skip down
      const NodeId parent = node->parent();
      if (!parent.valid()) {
        if (node->stratum() > 1) {
          out.push_back(sim::Violation{
              name(), node->name() + " (stratum " +
                          std::to_string(node->stratum()) +
                          ") has no parent"});
        }
        continue;
      }
      const auto parent_it = by_id.find(parent.value());
      if (parent_it == by_id.end()) continue;  // adopted external parent
      component[find_root(index_of[node->id().value()])] =
          find_root(index_of[parent.value()]);

      // Walk the parent chain from this node; a revisit is a cycle, which
      // is legal only for the stratum-2 sibling ring (all members on the
      // same stratum; broadcast dedup makes it harmless).
      std::vector<gds::GdsServer*> path{node};
      std::unordered_map<std::uint32_t, std::size_t> seen{{
          node->id().value(), 0}};
      gds::GdsServer* cursor = node;
      while (true) {
        const NodeId next = cursor->parent();
        if (!next.valid()) break;
        const auto it = by_id.find(next.value());
        if (it == by_id.end()) break;
        cursor = it->second;
        const auto [pos, fresh] =
            seen.try_emplace(cursor->id().value(), path.size());
        if (!fresh) {
          bool same_stratum = true;
          for (std::size_t i = pos->second; i < path.size(); ++i) {
            same_stratum =
                same_stratum && path[i]->stratum() == cursor->stratum();
          }
          if (!same_stratum) {
            out.push_back(sim::Violation{
                name(),
                "cross-stratum parent cycle through " + cursor->name()});
          }
          break;
        }
        path.push_back(cursor);
        if (path.size() > nodes.size() + 1) break;  // defensive bound
      }
    }

    // All nodes still serving registered GS servers must be mutually
    // reachable along parent edges, or broadcasts cannot span them.
    std::optional<std::size_t> serving_component;
    for (gds::GdsServer* node : nodes) {
      if (!net.is_up(node->id()) || node->registered_count() == 0) continue;
      const std::size_t root = find_root(index_of[node->id().value()]);
      if (!serving_component.has_value()) {
        serving_component = root;
      } else if (*serving_component != root) {
        out.push_back(sim::Violation{
            name(), node->name() +
                        " (with registered servers) is disconnected from "
                        "the main directory component"});
      }
    }
  }

 private:
  Scenario& scenario_;
};

// --- dangling-profile -------------------------------------------------------

/// Records every notification the services send (via the notification
/// observer) and cross-checks them against subscription lifecycles: no
/// notification may stem from a profile cancelled before its event was
/// published, and none may reference a subscription the scenario never
/// created (e.g. a duplicate-subscribe leak).
class DanglingProfileChecker : public sim::InvariantChecker {
 public:
  DanglingProfileChecker(Scenario& scenario, bool check_false_positives)
      : scenario_(scenario),
        check_false_positives_(check_false_positives) {
    for (alerting::AlertingService* service : scenario.gsalert()) {
      service->set_notification_observer(
          [this](NodeId client, SubscriptionId sub,
                 const docmodel::Event& event) {
            sent_.push_back(Sent{client, sub, event.collection.str(),
                                 event.build_version,
                                 scenario_.net().now()});
          });
    }
  }

  std::string name() const override { return "dangling-profile"; }

  void check(std::vector<sim::Violation>& out) override {
    std::unordered_map<std::uint32_t, std::size_t> client_index;
    const auto& clients = scenario_.clients();
    for (std::size_t i = 0; i < clients.size(); ++i) {
      client_index[clients[i]->id().value()] = i;
    }
    std::map<std::pair<std::size_t, SubscriptionId>, Scenario::SubRecord>
        records;
    for (const Scenario::SubRecord& record : scenario_.sub_records()) {
      if (record.id != 0) {
        records[{record.client_index, record.id}] = record;
      }
    }
    std::size_t listed = 0;
    auto add = [&](std::string detail) {
      if (++listed <= kMaxListedViolations) {
        out.push_back(sim::Violation{name(), std::move(detail)});
      }
    };
    for (const Sent& sent : sent_) {
      const auto client = client_index.find(sent.client.value());
      if (client == client_index.end()) continue;  // non-scenario client
      const auto record = records.find({client->second, sent.sub});
      if (record == records.end()) {
        add("notification for unknown subscription #" +
            std::to_string(sent.sub) + " at client " +
            std::to_string(client->second));
        continue;
      }
      if (record->second.active) continue;
      const SimTime published =
          scenario_.publish_time(sent.ref, sent.version)
              .value_or(sent.at);
      if (published > record->second.cancelled_at +
                          kCancelPropagationMargin) {
        add("subscription #" + std::to_string(sent.sub) +
            " cancelled at " +
            std::to_string(record->second.cancelled_at.as_millis()) +
            "ms but notified for " + sent.ref + " v" +
            std::to_string(sent.version) + " published at " +
            std::to_string(published.as_millis()) + "ms");
      }
    }
    if (listed > kMaxListedViolations) {
      out.push_back(sim::Violation{
          name(), "... and " +
                      std::to_string(listed - kMaxListedViolations) +
                      " more dangling notifications"});
    }
    if (check_false_positives_) {
      const Outcome outcome = scenario_.outcome();
      if (outcome.false_positives > 0) {
        out.push_back(sim::Violation{
            name(), std::to_string(outcome.false_positives) +
                        " notification(s) delivered that no ground-truth "
                        "expectation covers"});
      }
    }
  }

 private:
  struct Sent {
    NodeId client;
    SubscriptionId sub;
    std::string ref;
    std::uint64_t version;
    SimTime at;
  };

  Scenario& scenario_;
  bool check_false_positives_;
  std::vector<Sent> sent_;
};

// --- post-heal-delivery -----------------------------------------------------

/// "Delayed, not lost" (§7/E11): after every fault has healed and the
/// directory re-converged, newly published events must reach every
/// matching subscription, and the reliable outboxes must drain to empty.
class PostHealCompletenessChecker : public sim::InvariantChecker {
 public:
  explicit PostHealCompletenessChecker(Scenario& scenario)
      : scenario_(scenario) {}

  std::string name() const override { return "post-heal-delivery"; }

  void mark() {
    snapshot_ = scenario_.expectation_snapshot();
    marked_ = true;
  }

  void check(std::vector<sim::Violation>& out) override {
    if (!marked_) return;
    const std::uint64_t missing =
        scenario_.false_negatives_beyond(snapshot_);
    if (missing > 0) {
      std::string detail = std::to_string(missing) +
                           " post-heal notification(s) never delivered:";
      const auto keys = scenario_.missing_keys_beyond(snapshot_);
      for (std::size_t i = 0; i < keys.size(); ++i) {
        if (i == kMaxListedViolations) {
          detail += " ... and " +
                    std::to_string(keys.size() - kMaxListedViolations) +
                    " more";
          break;
        }
        detail += " [" + keys[i] + "]";
      }
      out.push_back(sim::Violation{name(), std::move(detail)});
    }
    const auto& services = scenario_.gsalert();
    for (std::size_t i = 0; i < services.size(); ++i) {
      if (services[i]->outbox_size() > 0) {
        out.push_back(sim::Violation{
            name(), "outbox at server " + std::to_string(i) +
                        " still holds " +
                        std::to_string(services[i]->outbox_size()) +
                        " unacked message(s)"});
      }
    }
    // Store-and-forward custody: once the directory re-converged, every
    // parked relay must have been flushed to a route (or expired and then
    // re-parked/delivered off a sender retransmit; either way the lots
    // must be empty at quiescence).
    for (gds::GdsServer* node : scenario_.gds_tree().nodes) {
      if (node->parked_count() > 0) {
        out.push_back(sim::Violation{
            name(), "gds node " + node->name() + " still parks " +
                        std::to_string(node->parked_count()) +
                        " relay(s) after heal"});
      }
    }
  }

 private:
  Scenario& scenario_;
  bool marked_ = false;
  std::unordered_map<std::string, std::uint64_t> snapshot_;
};

// --- delivery-no-duplicate --------------------------------------------------

/// A user must never see the same notification twice, whatever the wire
/// did: digest retransmits, crash re-flushes (fresh digest_seq, same
/// entries) and duplicated packets all have to collapse in the client's
/// dedup ledgers. Scans every client log for a repeated
/// (subscription, event) pair — across senders too, since chaos profiles
/// never migrate between servers.
class DeliveryDuplicateChecker : public sim::InvariantChecker {
 public:
  explicit DeliveryDuplicateChecker(Scenario& scenario)
      : scenario_(scenario) {}

  std::string name() const override { return "delivery-no-duplicate"; }

  void check(std::vector<sim::Violation>& out) override {
    std::size_t listed = 0;
    for (const alerting::Client* client : scenario_.clients()) {
      std::unordered_set<std::string> seen;
      for (const auto& received : client->notifications()) {
        const std::string key = std::to_string(received.subscription_id) +
                                "#" + received.event.id.str();
        if (seen.insert(key).second) continue;
        if (++listed <= kMaxListedViolations) {
          out.push_back(sim::Violation{
              name(), client->name() + " received subscription #" +
                          std::to_string(received.subscription_id) +
                          " event " + received.event.id.str() + " twice"});
        }
      }
    }
    if (listed > kMaxListedViolations) {
      out.push_back(sim::Violation{
          name(), "... and " +
                      std::to_string(listed - kMaxListedViolations) +
                      " more duplicate deliveries"});
    }
  }

 private:
  Scenario& scenario_;
};

// --- crash-durability -------------------------------------------------------

/// Snapshots a node's durable-by-contract state at the instant it
/// crashes (via the network's crash observer, before storage fault
/// semantics apply) and re-checks it at quiescence: under honest fsync
/// every journaled fact committed before the crash must still be there
/// after the restart. Registrations, broadcast/event dedup keys and
/// processed forwards may only grow; subscriptions may shrink only by
/// explicit cancellation. Only the latest crash per node is kept — each
/// recovery must preserve the state of the most recent pre-crash commit.
class DurabilityChecker : public sim::InvariantChecker {
 public:
  explicit DurabilityChecker(Scenario& scenario) : scenario_(scenario) {
    scenario.net().set_crash_observer(
        [this](NodeId node) { snapshot(node); });
  }

  std::string name() const override { return "crash-durability"; }

  void check(std::vector<sim::Violation>& out) override {
    for (gds::GdsServer* node : scenario_.gds_tree().nodes) {
      const auto snap = gds_snaps_.find(node->id().value());
      if (snap == gds_snaps_.end()) continue;
      if (!scenario_.net().is_up(node->id())) continue;
      require_superset(out, node->name() + " registration",
                       snap->second.registered, node->registered_names());
      require_superset(out, node->name() + " broadcast-dedup key",
                       snap->second.seen, node->broadcast_seen_keys());
    }
    const auto& servers = scenario_.servers();
    const auto& services = scenario_.gsalert();
    for (std::size_t i = 0; i < servers.size() && i < services.size(); ++i) {
      const auto snap = svc_snaps_.find(servers[i]->id().value());
      if (snap == svc_snaps_.end()) continue;
      if (!scenario_.net().is_up(servers[i]->id())) continue;
      // A subscription may vanish only through an explicit cancel; the
      // scenario's lifecycle records say which ids those are.
      const auto cancelled = cancelled_ids(servers[i]->id());
      std::vector<std::string> want;
      for (const SubscriptionId id : snap->second.subs) {
        if (!cancelled.contains(id)) want.push_back("#" + std::to_string(id));
      }
      std::vector<std::string> have;
      for (const SubscriptionId id : services[i]->subscription_ids()) {
        have.push_back("#" + std::to_string(id));
      }
      require_superset(out, servers[i]->name() + " subscription", want, have);
      require_superset(out, servers[i]->name() + " seen-event",
                       snap->second.seen, services[i]->seen_event_keys());
      require_superset(out, servers[i]->name() + " processed-forward",
                       snap->second.forwards,
                       services[i]->processed_forward_keys());
      if (!snap->second.pending.empty()) {
        // Every delivery key pending at the crash must by now be on its
        // client or still pending (queued / unacked digest) — unless its
        // subscription was cancelled, which legally drops queue entries.
        std::vector<std::string> pending_want;
        for (const std::string& key : snap->second.pending) {
          const std::size_t a = key.find('#');
          const std::size_t b = key.find('#', a + 1);
          const SubscriptionId sub = static_cast<SubscriptionId>(
              std::stoull(key.substr(a + 1, b - a - 1)));
          if (!cancelled.contains(sub)) pending_want.push_back(key);
        }
        std::vector<std::string> pending_have =
            services[i]->pending_delivery_keys();
        append_delivered_keys(pending_have);
        require_superset(out, servers[i]->name() + " pending delivery",
                         pending_want, pending_have);
      }
    }
  }

 private:
  struct GdsSnap {
    std::vector<std::string> registered;
    std::vector<std::string> seen;
  };
  struct SvcSnap {
    std::vector<SubscriptionId> subs;
    std::vector<std::string> seen;
    std::vector<std::string> forwards;
    // "client#sub#origin#seq" delivery keys pending at the crash
    // (credit-managed runs only; unmanaged digests are fire-and-forget
    // and may legally vanish with a lost packet).
    std::vector<std::string> pending;
  };

  void snapshot(NodeId node) {
    for (gds::GdsServer* g : scenario_.gds_tree().nodes) {
      if (g->id() != node) continue;
      gds_snaps_[node.value()] =
          GdsSnap{g->registered_names(), g->broadcast_seen_keys()};
      return;
    }
    const auto& servers = scenario_.servers();
    const auto& services = scenario_.gsalert();
    for (std::size_t i = 0; i < servers.size() && i < services.size(); ++i) {
      if (servers[i]->id() != node) continue;
      svc_snaps_[node.value()] =
          SvcSnap{services[i]->subscription_ids(),
                  services[i]->seen_event_keys(),
                  services[i]->processed_forward_keys(),
                  services[i]->delivery().managed()
                      ? services[i]->pending_delivery_keys()
                      : std::vector<std::string>{}};
      return;
    }
  }

  /// Append a "client#sub#origin#seq" key for every notification any
  /// scenario client has recorded (same shape as
  /// DeliveryStage::pending_keys, so membership is a plain set lookup).
  void append_delivered_keys(std::vector<std::string>& out) const {
    for (const alerting::Client* client : scenario_.clients()) {
      for (const auto& received : client->notifications()) {
        out.push_back(std::to_string(client->id().value()) + "#" +
                      std::to_string(received.subscription_id) + "#" +
                      received.event.id.str());
      }
    }
  }

  std::unordered_set<SubscriptionId> cancelled_ids(NodeId server) const {
    std::unordered_set<SubscriptionId> out;
    const auto& clients = scenario_.clients();
    for (const Scenario::SubRecord& record : scenario_.sub_records()) {
      if (record.active || record.id == 0) continue;
      if (record.client_index >= clients.size()) continue;
      if (clients[record.client_index]->home() == server) {
        out.insert(record.id);
      }
    }
    return out;
  }

  void require_superset(std::vector<sim::Violation>& out,
                        const std::string& what,
                        const std::vector<std::string>& want,
                        const std::vector<std::string>& have) {
    const std::unordered_set<std::string> present{have.begin(), have.end()};
    std::size_t listed = 0;
    for (const std::string& key : want) {
      if (present.contains(key)) continue;
      if (++listed <= kMaxListedViolations) {
        out.push_back(sim::Violation{
            name(), what + " " + key + " lost across crash-restart"});
      }
    }
    if (listed > kMaxListedViolations) {
      out.push_back(sim::Violation{
          name(), "... and " +
                      std::to_string(listed - kMaxListedViolations) +
                      " more lost from " + what});
    }
  }

  Scenario& scenario_;
  std::unordered_map<std::uint32_t, GdsSnap> gds_snaps_;
  std::unordered_map<std::uint32_t, SvcSnap> svc_snaps_;
};

// --- harness ----------------------------------------------------------------

ChaosHarness::ChaosHarness(Scenario& scenario, ChaosHarnessOptions options)
    : scenario_(scenario) {
  // Arm the flight recorder for the harness's lifetime. When this is the
  // first sink of the session, restart the span-id allocator so a seed
  // replay produces byte-identical ids (ChaosReplay depends on it);
  // when a tracer is already installed (a bench's --trace-out), leave
  // the allocator alone and just join the session.
  if (!obs::active()) obs::reset_ids();
  obs::add_sink(&recorder_);
  set_log_observer([this](LogLevel /*level*/, SimTime now,
                          const std::string& component,
                          const std::string& message) {
    recorder_.note(now, component, message);
  });
  if (options.full_checks) {
    assert(scenario.config().strategy == Strategy::kGsAlert);
    exactly_once_ =
        registry_.add(std::make_unique<GdsExactlyOnceChecker>(scenario));
    registry_.add(std::make_unique<TreeWellFormedChecker>(scenario));
    registry_.add(std::make_unique<DanglingProfileChecker>(
        scenario, options.check_false_positives));
    post_heal_ =
        registry_.add(std::make_unique<PostHealCompletenessChecker>(
            scenario));
    registry_.add(std::make_unique<DurabilityChecker>(scenario));
    registry_.add(std::make_unique<DeliveryDuplicateChecker>(scenario));
  }
  registry_.add(
      std::make_unique<sim::WireConservationChecker>(scenario.net()));
}

ChaosHarness::~ChaosHarness() {
  obs::remove_sink(&recorder_);
  set_log_observer(nullptr);
  scenario_.net().set_crash_observer({});
  for (gds::GdsServer* node : scenario_.gds_tree().nodes) {
    node->set_delivery_observer({});
  }
  for (alerting::AlertingService* service : scenario_.gsalert()) {
    service->set_notification_observer({});
  }
}

sim::ChaosConfig ChaosHarness::fill_targets(Scenario& scenario,
                                            sim::ChaosConfig config) {
  for (gds::GdsServer* node : scenario.gds_tree().nodes) {
    config.crash_targets.push_back(node->id());
    config.partition_units.push_back({node->id()});
    if (node->parent().valid()) {
      config.block_candidates.emplace_back(node->id(), node->parent());
    }
  }
  std::unordered_map<std::uint32_t, std::vector<NodeId>> clients_by_home;
  for (alerting::Client* client : scenario.clients()) {
    clients_by_home[client->home().value()].push_back(client->id());
  }
  for (gsnet::GreenstoneServer* server : scenario.servers()) {
    config.crash_targets.push_back(server->id());
    // A client is never partitioned away from its home server: the user
    // and "their" server sit on the same side (paper §7 model).
    std::vector<NodeId> unit{server->id()};
    const auto clients = clients_by_home.find(server->id().value());
    if (clients != clients_by_home.end()) {
      unit.insert(unit.end(), clients->second.begin(),
                  clients->second.end());
    }
    config.partition_units.push_back(std::move(unit));
    if (server->gds().attached()) {
      config.block_candidates.emplace_back(server->id(),
                                           server->gds().gds_node());
    }
  }
  // Blocking the two hosts of a distributed collection forces the
  // aux-forward path onto retries / the GDS relay.
  for (const auto& [super, sub] : scenario.distributed_links()) {
    const NodeId a = scenario.net().find_node(super.host);
    const NodeId b = scenario.net().find_node(sub.host);
    if (a.valid() && b.valid() && a != b) {
      config.block_candidates.emplace_back(a, b);
    }
  }
  // Targeted latency-spike candidates: the links the protocols actually
  // depend on (tree edges, server->GDS attachments).
  for (gds::GdsServer* node : scenario.gds_tree().nodes) {
    if (node->parent().valid()) {
      config.spike_link_candidates.emplace_back(node->id(), node->parent());
    }
  }
  for (gsnet::GreenstoneServer* server : scenario.servers()) {
    if (server->gds().attached()) {
      config.spike_link_candidates.emplace_back(server->id(),
                                                server->gds().gds_node());
    }
  }
  // Correlated regional failures: group the partition units (a server and
  // its clients always travel together) by the region of the unit's first
  // member. Grouping units — not raw node regions — preserves the §7
  // model: a client is never cut off from its home server.
  const sim::Topology* topo = scenario.net().topology();
  if (topo != nullptr && topo->regions >= 2) {
    config.regions.assign(topo->regions, {});
    for (const std::vector<NodeId>& unit : config.partition_units) {
      if (unit.empty()) continue;
      const std::size_t region = scenario.net().region_of(unit.front());
      config.regions[region].insert(config.regions[region].end(),
                                    unit.begin(), unit.end());
    }
  }
  return config;
}

const sim::ChaosSchedule& ChaosHarness::inject(std::uint64_t chaos_seed,
                                               sim::ChaosConfig config) {
  return inject_schedule(sim::ChaosSchedule::generate(
      fill_targets(scenario_, std::move(config)), chaos_seed));
}

const sim::ChaosSchedule& ChaosHarness::inject_schedule(
    sim::ChaosSchedule schedule) {
  schedule_ = std::move(schedule);
  injected_at_ = scenario_.net().now();
  schedule_.apply(scenario_.net());
  return schedule_;
}

void ChaosHarness::mark_healed() {
  if (post_heal_ != nullptr) post_heal_->mark();
}

// --- run protocol -----------------------------------------------------------

namespace {

ChaosReport run_protocol(const ChaosRunConfig& config,
                         const sim::ChaosSchedule* explicit_schedule) {
  ScenarioConfig sc;
  sc.strategy = Strategy::kGsAlert;
  sc.n_servers = config.n_servers;
  sc.gds_fanout = config.gds_fanout;
  sc.clients_per_server = config.clients_per_server;
  sc.seed = config.seed;
  sc.gds_dedup = config.gds_dedup;
  sc.journal_compact_bytes = config.journal_compact_bytes;
  sc.sim_topology = config.sim_topology;
  sc.adaptive_tree = config.adaptive_tree;
  if (config.managed_delivery) {
    // Small credit window so chaos actually stalls queues; capacity far
    // above chaos-scale load so nothing spills (a spilled entry would be
    // an honest loss the durability superset check must not count).
    sc.alerting.delivery.credits = 8;
    sc.alerting.delivery.queue_capacity = 4096;
    sc.alerting.delivery.default_window = SimTime::millis(200);
  }
  Scenario scenario{sc};
  scenario.net().storage_faults() = config.storage_faults;
  ChaosHarnessOptions harness_options;
  harness_options.full_checks = config.full_checks;
  ChaosHarness harness{scenario, harness_options};

  scenario.setup_collections();
  if (config.distributed_links > 0) {
    scenario.setup_distributed(config.distributed_links);
  }
  if (config.mediator_queries > 0) {
    scenario.setup_virtual_collection();
  }
  scenario.subscribe_all(config.profiles_per_client);
  scenario.settle(SimTime::seconds(3));
  if (config.managed_delivery) {
    // Seeded mix of delivery policies across the acked subscriptions:
    // roughly a third each immediate / coalesce / digest, windows well
    // under the churn step so digests flush between publishes.
    Rng policy_rng{config.seed ^ 0xD311FE27ULL};
    std::unordered_map<std::uint32_t, alerting::AlertingService*> by_server;
    const auto& servers = scenario.servers();
    const auto& services = scenario.gsalert();
    for (std::size_t i = 0; i < servers.size() && i < services.size(); ++i) {
      by_server[servers[i]->id().value()] = services[i];
    }
    for (const Scenario::SubRecord& record : scenario.sub_records()) {
      if (record.id == 0) continue;
      alerting::Client* client = scenario.clients()[record.client_index];
      const auto service = by_server.find(client->home().value());
      if (service == by_server.end()) continue;
      alerting::DeliveryPolicy policy;
      switch (policy_rng.uniform_int(0, 2)) {
        case 1:
          policy.mode = alerting::DeliveryMode::kCoalesce;
          policy.window = SimTime::millis(
              100 + 50 * static_cast<std::uint64_t>(
                             policy_rng.uniform_int(0, 4)));
          break;
        case 2:
          policy.mode = alerting::DeliveryMode::kDigest;
          policy.window = SimTime::millis(
              200 + 100 * static_cast<std::uint64_t>(
                              policy_rng.uniform_int(0, 3)));
          break;
        default:
          break;  // immediate (still channel-managed: digest-of-one)
      }
      service->second->set_delivery_policy(record.id, policy);
    }
  }
  for (int i = 0; i < config.warmup_publishes; ++i) {
    scenario.publish_random_rebuild(2);
    scenario.settle(SimTime::millis(300));
  }
  scenario.settle(SimTime::seconds(1));

  const sim::ChaosSchedule& schedule =
      explicit_schedule != nullptr
          ? harness.inject_schedule(*explicit_schedule)
          : harness.inject(config.seed ^ 0xC4A05C4A05ULL, config.chaos);

  // Drive churn across the fault window. Derived from the same seed, so
  // the interleaving replays exactly.
  Rng drive{config.seed * 0x9E3779B97F4A7C15ULL + 1};
  const SimTime window =
      std::max(config.chaos.duration, schedule.last_end());
  const int steps = std::max(1, config.chaos_steps);
  for (int s = 0; s < steps; ++s) {
    scenario.settle(SimTime::micros(window.as_micros() / steps));
    const SimTime offset = scenario.net().now() - harness.injected_at();
    if (drive.chance(0.3) &&
        schedule.quiet(offset, offset + kCancelQuietWindow)) {
      scenario.cancel_random();
    } else {
      scenario.publish_random_rebuild(2);
    }
  }

  // Heal: run past the last fault end, then give the directory time to
  // re-converge (registration refresh 2s, heartbeat sweep 0.5s, outbox
  // retry 1s).
  const SimTime heal_at =
      harness.injected_at() + schedule.last_end() + SimTime::millis(200);
  if (scenario.net().now() < heal_at) {
    scenario.settle(heal_at - scenario.net().now());
  }
  scenario.settle(SimTime::seconds(8));
  harness.mark_healed();

  for (int i = 0; i < config.final_publishes; ++i) {
    scenario.publish_random_rebuild(2);
    scenario.settle(SimTime::millis(500));
  }
  scenario.settle(SimTime::seconds(10));

  // Post-heal mediated fan-outs: with every fault healed, a scatter over
  // the virtual collection must come back complete — every member
  // answered within its deadline, no partial merges.
  std::vector<std::pair<int, gsnet::MediatedQueryResult>> mediated;
  if (config.mediator_queries > 0) {
    for (int q = 0; q < config.mediator_queries; ++q) {
      const std::size_t origin =
          static_cast<std::size_t>(q) % scenario.servers().size();
      scenario.mediated_query(origin, "v-union", "title:chaos",
                              [&mediated, q](gsnet::MediatedQueryResult r) {
                                mediated.emplace_back(q, std::move(r));
                              });
    }
    scenario.settle(SimTime::seconds(5));
  }

  ChaosReport report;
  report.violations = harness.check();
  if (config.mediator_queries > 0) {
    if (mediated.size() != static_cast<std::size_t>(config.mediator_queries)) {
      report.violations.push_back(
          {"mediator-post-heal",
           "only " + std::to_string(mediated.size()) + " of " +
               std::to_string(config.mediator_queries) +
               " post-heal mediated queries completed"});
    }
    for (const auto& [q, result] : mediated) {
      if (!result.ok || result.partial ||
          result.peers_answered != result.peers_total) {
        report.violations.push_back(
            {"mediator-post-heal",
             "query " + std::to_string(q) + " incomplete after heal: " +
                 std::to_string(result.peers_answered) + "/" +
                 std::to_string(result.peers_total) + " answered, " +
                 std::to_string(result.peers_timed_out) + " timed out, " +
                 std::to_string(result.peers_failed) + " failed" +
                 (result.error.empty() ? "" : " (" + result.error + ")")});
      }
    }
  }
  report.schedule = harness.schedule();
  report.outcome = scenario.outcome();
  for (const auto& [node, storage] : scenario.net().storages()) {
    for (const std::string& file : storage->files()) {
      if (!file.ends_with(".log")) continue;
      report.max_journal_log_bytes =
          std::max<std::uint64_t>(report.max_journal_log_bytes,
                                  storage->durable_size(file));
    }
  }
  std::ostringstream trace;
  trace << "seed=" << config.seed << " servers=" << config.n_servers
        << " fanout=" << config.gds_fanout
        << " links=" << config.distributed_links
        << " dedup=" << (config.gds_dedup ? 1 : 0)
        << " topology=" << (config.sim_topology.empty() ? "uniform"
                                                        : config.sim_topology)
        << " adaptive=" << (config.adaptive_tree ? 1 : 0)
        << " mediator=" << config.mediator_queries << "\n"
        << "schedule:\n"
        << report.schedule.describe(scenario.net()) << "verdicts:\n"
        << harness.report();
  if (!report.violations.empty()) {
    // Turn the verdict into a causal narrative: each node's recent
    // spans and log lines around the failure, hop by hop — then the
    // numeric state of the world: per-node health and the full metrics
    // snapshot, so a dump answers "where was it wedged" on its own.
    trace << harness.flight_dump();
    trace << health_scoreboard(scenario);
    obs::MetricsRegistry snapshot;
    scenario.collect_metrics(snapshot);
    collect_health(scenario, snapshot);
    trace << "metrics snapshot:\n" << snapshot.text_snapshot();
  }
  report.trace = trace.str();
  return report;
}

}  // namespace

ChaosReport run_chaos(const ChaosRunConfig& config) {
  return run_protocol(config, nullptr);
}

ChaosReport run_chaos_with(const ChaosRunConfig& config,
                           const sim::ChaosSchedule& schedule) {
  return run_protocol(config, &schedule);
}

sim::ChaosSchedule minimize_schedule(const ChaosRunConfig& config,
                                     sim::ChaosSchedule schedule) {
  const auto violates = [&config](const sim::ChaosSchedule& s) {
    return !run_chaos_with(config, s).ok();
  };
  if (!violates(schedule)) return schedule;
  bool shrunk = true;
  while (shrunk && schedule.faults().size() > 1) {
    shrunk = false;
    for (std::size_t i = 0; i < schedule.faults().size(); ++i) {
      sim::ChaosSchedule trial = schedule.without(i);
      if (violates(trial)) {
        schedule = std::move(trial);
        shrunk = true;
        break;
      }
    }
  }
  return schedule;
}

}  // namespace gsalert::workload
