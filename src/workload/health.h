// Per-node health scoreboard: one row per live node with the depth and
// pressure signals an operator would page on — unacked channel entries,
// endpoint retransmit/timeout counts, parked store-and-forward frames,
// journal backlog. Snapshotted into chaos violation reports so a failing
// seed's dump shows *where* the system was wedged, not just which
// invariant tripped.
#pragma once

#include <string>

namespace gsalert::obs {
class MetricsRegistry;
}

namespace gsalert::workload {

class Scenario;

/// Fixed-width text table, one row per server / GDS node / client,
/// sorted by node name. Columns: unacked (reliable-channel outbox),
/// rtx/timeout (endpoint retransmits, timeouts), pending (in-flight
/// requests), parked (store-and-forward frames held), jrnl_pend /
/// jrnl_log (journal bytes not yet fsynced / total log bytes).
std::string health_scoreboard(Scenario& scenario);

/// Same signals as gauges under health.node.*{node=...} for bench JSON
/// and the chaos metrics snapshot.
void collect_health(Scenario& scenario, obs::MetricsRegistry& registry);

}  // namespace gsalert::workload
