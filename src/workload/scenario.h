// Scenario: a full simulated world — Greenstone servers with a pluggable
// alerting strategy, a GDS tree (for the real service), clients, generated
// collections and profiles — plus ground-truth accounting so experiments
// can report false positives/negatives and latency, not just traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "alerting/alerting_service.h"
#include "alerting/client.h"
#include "baselines/centralized.h"
#include "baselines/gs_flooding.h"
#include "baselines/profile_flooding.h"
#include "baselines/rendezvous.h"
#include "common/rng.h"
#include "gds/tree_builder.h"
#include "gsnet/greenstone_server.h"
#include "obs/latency.h"
#include "obs/trace.h"
#include "profiles/profile.h"
#include "sim/network.h"
#include "workload/generators.h"
#include "workload/metrics.h"

namespace gsalert::workload {

enum class Strategy {
  kGsAlert,          // the paper's hybrid service (GDS event flooding)
  kCentralized,      // B1
  kProfileFlooding,  // B2
  kRendezvous,       // B3
  kGsFlooding,       // B4
};

const char* strategy_name(Strategy s);

struct ScenarioConfig {
  Strategy strategy = Strategy::kGsAlert;
  int n_servers = 8;
  int gds_fanout = 3;               // GDS tree shape (kGsAlert)
  int n_rendezvous = 4;             // broker count (kRendezvous)
  int clients_per_server = 1;
  int collections_per_server = 2;
  CollectionGenConfig collection;
  ProfileGenConfig profile;
  /// Per-server alerting service config (kGsAlert): delivery credits,
  /// coalesce windows, event-coalescing — defaults keep the legacy
  /// unmanaged-immediate delivery contract.
  alerting::AlertingConfig alerting;
  /// Overlay used by the flooding strategies (B2, B4). The real service
  /// ignores it (that is the point: the GS network is too fragmented).
  TopologyGenConfig topology;
  /// When set, used verbatim instead of generating from `topology`
  /// (n_servers must match).
  std::optional<GsTopology> explicit_topology;
  std::uint64_t seed = 1;
  sim::PathConfig path{.latency = SimTime::millis(10)};
  /// WAN topology-zoo name (sim::topology_by_name; docs/TOPOLOGY.md):
  /// empty keeps the uniform default `path`. When set, per-pair
  /// latency/jitter comes from the topology's region matrix instead.
  std::string sim_topology;
  /// Latency-aware adaptive GDS tree (kGsAlert): nodes measure RTT to
  /// their proper ancestors and re-parent, with hysteresis, towards the
  /// closest one. Off = the classic fixed stratum tree.
  bool adaptive_tree = false;
  /// Journal compaction threshold for every durable node (0 = library
  /// default). Small values force frequent compactions mid-run — the
  /// crash-adjacent-to-compaction chaos class.
  std::size_t journal_compact_bytes = 0;
  bool gds_dedup = true;            // ablation switch (E7); also B4 dedup
  bool b2_covering = false;         // ablation switch (E5): B2 merging
  /// Parallel-kernel width: > 1 partitions the world onto this many
  /// shards (kGsAlert shards along the GDS stratum tree — servers stay
  /// with their GDS leaf, clients with their server; other strategies
  /// fall back to contiguous blocks). 1 = the serial, bit-identical
  /// kernel. See DESIGN.md "Sharded kernel".
  int sim_shards = 1;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);

  sim::Network& net() { return net_; }
  const ScenarioConfig& config() const { return config_; }
  std::vector<gsnet::GreenstoneServer*>& servers() { return servers_; }
  std::vector<alerting::Client*>& clients() { return clients_; }
  const gds::GdsTree& gds_tree() const { return gds_tree_; }
  const GsTopology& topology() const { return topology_; }

  /// Strategy-specific extensions (empty unless that strategy is active).
  const std::vector<alerting::AlertingService*>& gsalert() const {
    return gsalert_;
  }
  const std::vector<baselines::ProfileFloodAlerting*>& profile_flood() const {
    return pflood_;
  }
  const std::vector<baselines::GsFloodAlerting*>& gs_flood() const {
    return gsflood_;
  }
  baselines::CentralServer* central() const { return central_; }
  const std::vector<baselines::RendezvousBroker*>& rendezvous_brokers()
      const {
    return rv_brokers_;
  }

  /// Build the initial collections on every server (run before
  /// subscriptions so the setup burst is not part of the measurement).
  void setup_collections();

  /// Turn up to `links` collections into distributed collections by
  /// adding a remote sub-collection link (super on a lower-indexed server
  /// than the sub, so the include graph is acyclic). Ground-truth
  /// accounting then follows the paper's rename cascade: a rebuild of a
  /// sub-collection is also expected — renamed — at every transitive
  /// super. kGsAlert only (baselines don't implement aux profiles).
  void setup_distributed(int links);
  const std::vector<std::pair<CollectionRef, CollectionRef>>&
  distributed_links() const {
    return dist_links_;
  }

  /// Every client subscribes `n` generated profiles; call settle()
  /// afterwards so acks land.
  void subscribe_all(int n);
  /// Subscribe one client with an explicit profile.
  void subscribe(std::size_t client_index, const std::string& text);
  /// Cancel a random active subscription; returns false if none left.
  bool cancel_random();

  /// Rebuild a random collection with `fresh_docs` new documents,
  /// recording the ground-truth expectations for every active profile.
  void publish_random_rebuild(int fresh_docs = 3);
  /// Rebuild a specific collection.
  void publish_rebuild(std::size_t server_index, const std::string& coll,
                       int fresh_docs);

  /// Define the virtual collection `vname` on every server's query
  /// mediator, spanning each server's first collection (Dushay & French
  /// distributed-collection model). Requires setup_collections().
  void setup_virtual_collection(const std::string& vname = "v-union");
  /// Scatter a micro-filter query over virtual collection `vname` from
  /// `origin`'s mediator; `done` fires during a later settle() once every
  /// member answered or its per-peer deadline passed.
  void mediated_query(std::size_t origin, const std::string& vname,
                      const std::string& query_text,
                      std::function<void(gsnet::MediatedQueryResult)> done);

  void settle(SimTime duration);

  /// Compare client notification logs against the recorded expectations.
  /// Also fills Outcome::latency: sim-time stages from the scenario's own
  /// span tracker, wall-clock match CPU / fsync merged from the services.
  Outcome outcome() const;

  /// The span-derived latency tracker armed for this scenario's lifetime.
  const obs::LatencyTracker& latency_tracker() const { return tracker_; }

  /// Export the whole world's counters — network, GDS tree, alerting
  /// services — into `registry` (see docs/OBSERVABILITY.md for names).
  void collect_metrics(obs::MetricsRegistry& registry) const;

  std::uint64_t events_published() const { return events_published_; }

  /// --- invariant-checker surface -----------------------------------------
  /// Tracked subscription state, for checkers that correlate client
  /// notification logs with subscription lifecycles.
  struct SubRecord {
    std::size_t client_index;
    SubscriptionId id;     // 0 if the subscribe ack never arrived
    bool active;
    SimTime cancelled_at;  // meaningful when !active
  };
  std::vector<SubRecord> sub_records() const;

  /// When the rebuild that produced (ref, version) was published (nullopt
  /// for events the scenario never recorded).
  std::optional<SimTime> publish_time(const std::string& ref,
                                      std::uint64_t version) const;

  /// Snapshot of the ground-truth expectation table, so a checker can
  /// scope "every expectation must be met" to work created after a point
  /// in time (e.g. after all faults healed).
  std::unordered_map<std::string, std::uint64_t> expectation_snapshot()
      const {
    return expected_;
  }
  /// False negatives counting only the expectations added beyond
  /// `snapshot` (per-key count deltas).
  std::uint64_t false_negatives_beyond(
      const std::unordered_map<std::string, std::uint64_t>& snapshot) const;
  /// The offending expectation keys behind false_negatives_beyond(),
  /// sorted, as "client#ref#version (want N, got M)" diagnostics.
  std::vector<std::string> missing_keys_beyond(
      const std::unordered_map<std::string, std::uint64_t>& snapshot) const;

 private:
  struct TrackedSub {
    std::size_t client_index;
    std::string text;
    profiles::Profile parsed;
    SubscriptionId id = 0;  // 0 until acked
    bool active = true;
    SimTime cancelled_at;
  };
  struct CollState {
    std::string name;
    std::vector<docmodel::Document> docs;
  };

  void build_world();
  void wire_links();
  /// Partition the finished world onto config_.sim_shards shards (no-op
  /// at 1). Must run after build_world and before net_.start().
  void apply_sharding();
  std::string host_name(int i) const { return "Host" + std::to_string(i); }

  ScenarioConfig config_;
  Rng rng_;
  // Armed before the world is built so every publish is traced; sink
  // removed in member destruction order (after the world is gone).
  obs::LatencyTracker tracker_;
  obs::ScopedSink tracker_sink_{&tracker_};
  sim::Network net_;
  gds::GdsTree gds_tree_;
  GsTopology topology_;
  std::vector<gsnet::GreenstoneServer*> servers_;
  std::vector<alerting::Client*> clients_;
  std::vector<MetadataSchema> schemas_;
  std::vector<std::unique_ptr<CollectionGen>> collgens_;
  std::vector<std::vector<CollState>> collections_;  // per server

  std::vector<alerting::AlertingService*> gsalert_;
  std::vector<baselines::ProfileFloodAlerting*> pflood_;
  std::vector<baselines::GsFloodAlerting*> gsflood_;
  baselines::CentralServer* central_ = nullptr;
  std::vector<baselines::RendezvousBroker*> rv_brokers_;

  std::vector<TrackedSub> subs_;
  std::vector<std::string> hosts_;
  std::vector<CollectionRef> all_collections_;
  // (super, sub) include links created by setup_distributed.
  std::vector<std::pair<CollectionRef, CollectionRef>> dist_links_;

  // Ground truth: expectation key "client#ref#version" -> count; and the
  // publish time for latency.
  std::unordered_map<std::string, std::uint64_t> expected_;
  std::unordered_map<std::string, SimTime> publish_time_;
  std::uint64_t events_published_ = 0;
  DocumentId next_doc_id_ = 1;
};

}  // namespace gsalert::workload
