// Experiment outcome accounting shared by the bench harnesses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/histogram.h"
#include "obs/metrics_registry.h"

namespace gsalert::workload {

/// Correctness + performance outcome of a scenario run.
struct Outcome {
  std::uint64_t events_published = 0;
  std::uint64_t expected_notifications = 0;
  std::uint64_t delivered_matching = 0;  // delivered AND expected
  std::uint64_t false_positives = 0;     // delivered but not expected
  std::uint64_t false_negatives = 0;     // expected but never delivered
  Histogram notification_latency_ms;

  /// End-to-end latency quantiles and per-stage decomposition (flood
  /// hops, park dwell, retransmit delay, match CPU, fsync). Filled by
  /// Scenario::outcome(); benches without a Scenario merge their own
  /// tracker's breakdown in. Exported by record_outcome under latency.*.
  obs::LatencyBreakdown latency;

  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  /// Copy split of bytes_sent: freshly memcpy'd (headers, flat sends)
  /// vs refcount-aliased shared body frames. Copied + shared == sent.
  std::uint64_t bytes_copied = 0;
  std::uint64_t bytes_shared = 0;
  /// Hotspot measure: busiest node's message count / mean across nodes.
  double max_over_mean_node_load = 0.0;
};

/// Render a row of "name value" pairs for the bench tables.
void print_table_header(const std::string& title,
                        const std::string& columns);
void print_row(const std::string& row);

/// Parse `--chaos-seed=N` from a bench's argv. When present, the bench
/// runs with a seeded fault schedule injected and the invariant
/// checkers armed, and exits non-zero on any violation.
std::optional<std::uint64_t> chaos_seed_arg(int argc, char** argv);

/// Export an Outcome into `registry` under `outcome.*` (optionally
/// labeled, e.g. {{"strategy","gsalert"}} when one bench compares runs).
void record_outcome(obs::MetricsRegistry& registry, const Outcome& outcome,
                    const obs::Labels& labels = {});

/// World shape a bench ran on, recorded in every report's "meta" block
/// (the sentinel's --schema-check enforces its presence). Benches on the
/// uniform default mesh keep the defaults; topology-zoo benches name the
/// WAN topology (or "zoo" for multi-topology sweeps) and its region
/// count. See docs/TOPOLOGY.md.
struct BenchMeta {
  std::string topology = "uniform";
  std::size_t regions = 1;
};

/// Write `BENCH_<name>.json` in the working directory: the registry's
/// metrics snapshot next to the human-readable table a bench prints.
/// Returns false (after logging to stderr) on I/O failure.
bool write_bench_json(const std::string& name,
                      const obs::MetricsRegistry& registry,
                      const BenchMeta& meta = {});

}  // namespace gsalert::workload
