#include "workload/generators.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <numeric>

namespace gsalert::workload {

namespace {

const std::vector<std::string> kAttributePool = {
    "title",   "creator", "subject",  "publisher", "language",
    "format",  "genre",   "audience", "rights",    "coverage"};

const std::vector<std::string> kValueStems = {
    "alpha", "beta",  "gamma", "delta", "epsilon", "zeta",
    "eta",   "theta", "iota",  "kappa", "lambda",  "mu"};

std::string term_for(std::size_t rank) { return "term" + std::to_string(rank); }

}  // namespace

MetadataSchema MetadataSchema::for_host(const std::string& host,
                                        std::uint64_t seed) {
  // Deterministic per-host schema: hash the host name into the choice of
  // attributes and value-pool sizes.
  Rng rng{seed ^ std::hash<std::string>{}(host)};
  MetadataSchema schema;
  // Every host has title+creator (the common DL core); 1-3 extra
  // attributes differ per installation.
  schema.attributes = {"title", "creator"};
  const int extras = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < extras; ++i) {
    const std::string& attr = kAttributePool[rng.index(kAttributePool.size())];
    if (std::find(schema.attributes.begin(), schema.attributes.end(), attr) ==
        schema.attributes.end()) {
      schema.attributes.push_back(attr);
    }
  }
  for (const std::string& attr : schema.attributes) {
    std::vector<std::string> pool;
    const int n = static_cast<int>(rng.uniform_int(4, 10));
    for (int i = 0; i < n; ++i) {
      pool.push_back(attr + "-" + kValueStems[rng.index(kValueStems.size())] +
                     std::to_string(i));
    }
    schema.values.push_back(std::move(pool));
  }
  return schema;
}

docmodel::Document CollectionGen::make_document(DocumentId id) {
  docmodel::Document doc;
  doc.id = id;
  for (std::size_t a = 0; a < schema_.attributes.size(); ++a) {
    doc.metadata.add(schema_.attributes[a],
                     schema_.values[a][rng_.index(schema_.values[a].size())]);
  }
  doc.terms.reserve(static_cast<std::size_t>(config_.terms_per_doc));
  for (int t = 0; t < config_.terms_per_doc; ++t) {
    doc.terms.push_back(term_for(
        rng_.zipf(static_cast<std::size_t>(config_.vocabulary),
                  config_.zipf_s)));
  }
  return doc;
}

docmodel::DataSet CollectionGen::make_data_set(DocumentId first_id,
                                               int count) {
  docmodel::DataSet ds;
  for (int i = 0; i < count; ++i) {
    ds.add(make_document(first_id + static_cast<DocumentId>(i)));
  }
  return ds;
}

docmodel::CollectionConfig CollectionGen::make_config(
    const std::string& name) {
  docmodel::CollectionConfig config;
  config.name = name;
  config.indexed_attributes = schema_.attributes;
  config.classifier_attributes = {schema_.attributes.front()};
  return config;
}

ProfileKind ProfileGen::pick_kind() {
  const double total = std::accumulate(config_.kind_weights.begin(),
                                       config_.kind_weights.end(), 0.0);
  double draw = rng_.uniform() * total;
  for (std::size_t i = 0; i < config_.kind_weights.size(); ++i) {
    draw -= config_.kind_weights[i];
    if (draw <= 0) return static_cast<ProfileKind>(i);
  }
  return ProfileKind::kCollectionWatch;
}

std::string ProfileGen::make_profile(
    const std::vector<std::string>& hosts,
    const std::vector<CollectionRef>& collections,
    const std::vector<MetadataSchema>& schemas) {
  assert(!hosts.empty() && !collections.empty());
  const std::size_t host_i = rng_.index(hosts.size());
  const CollectionRef& coll =
      collections[rng_.zipf(collections.size(), config_.collection_zipf_s)];
  const std::string scope = rng_.chance(config_.scope_probability)
                                ? "ref = " + coll.str() + " AND "
                                : "";
  switch (pick_kind()) {
    case ProfileKind::kHostWatch:
      return "host = " + hosts[host_i];
    case ProfileKind::kCollectionWatch:
      return "ref = " + coll.str();
    case ProfileKind::kTypeWatch:
      return "host = " + hosts[host_i] +
             (rng_.chance(0.5) ? " AND type = collection_rebuilt"
                               : " AND type = collection_built");
    case ProfileKind::kMetadataWatch: {
      const MetadataSchema& schema = schemas[host_i % schemas.size()];
      const std::size_t a = rng_.index(schema.attributes.size());
      return scope + schema.attributes[a] + " = " +
             schema.values[a][rng_.index(schema.values[a].size())];
    }
    case ProfileKind::kQueryWatch: {
      const std::size_t r1 = rng_.zipf(200, 1.0);
      const std::size_t r2 = rng_.zipf(200, 1.0);
      if (rng_.chance(0.5)) {
        return scope + "doc ~ \"" + term_for(r1) + " OR " + term_for(r2) +
               "\"";
      }
      return scope + "doc ~ \"" + term_for(r1) + "\"";
    }
    case ProfileKind::kDocWatch: {
      std::string ids;
      const int n = static_cast<int>(rng_.uniform_int(1, 3));
      for (int i = 0; i < n; ++i) {
        if (i > 0) ids += ", ";
        ids += std::to_string(rng_.uniform_int(1, 2000));
      }
      return scope + "doc_id IN [" + ids + "]";
    }
  }
  return "ref = " + coll.str();
}

std::size_t SubscriptionGen::pick_collection() {
  assert(!collections_.empty());
  return rng_.zipf(collections_.size(), config_.zipf_s);
}

std::string SubscriptionGen::make_subscription() {
  const CollectionRef& coll = collections_[pick_collection()];
  if (rng_.chance(config_.rebuild_watch_fraction)) {
    return "ref = " + coll.str() + " AND type = collection_rebuilt";
  }
  return "ref = " + coll.str();
}

std::vector<std::vector<int>> GsTopology::components() const {
  std::vector<int> parent(static_cast<std::size_t>(n_servers));
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      x = parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
    }
    return x;
  };
  for (const auto& [a, b] : links) {
    parent[static_cast<std::size_t>(find(a))] = find(b);
  }
  std::vector<std::vector<int>> comps(static_cast<std::size_t>(n_servers));
  for (int i = 0; i < n_servers; ++i) {
    comps[static_cast<std::size_t>(find(i))].push_back(i);
  }
  std::erase_if(comps, [](const auto& c) { return c.empty(); });
  return comps;
}

GsTopology make_topology(Rng& rng, int n_servers, TopologyGenConfig config) {
  GsTopology topo;
  topo.n_servers = n_servers;
  std::vector<int> order(static_cast<std::size_t>(n_servers));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());

  const int n_linked = static_cast<int>(
      static_cast<double>(n_servers) * (1.0 - config.solitary_fraction));
  int i = 0;
  while (i < n_linked) {
    const int island_end = std::min(
        i + std::max(2, static_cast<int>(rng.uniform_int(
                            2, std::max(2, config.island_size)))),
        n_linked);
    if (island_end - i < 2) break;
    // Chain the island's servers, optionally closing the cycle.
    for (int j = i; j + 1 < island_end; ++j) {
      topo.links.emplace_back(order[static_cast<std::size_t>(j)],
                              order[static_cast<std::size_t>(j + 1)]);
    }
    if (island_end - i >= 3 && rng.chance(config.cycle_probability)) {
      topo.links.emplace_back(order[static_cast<std::size_t>(i)],
                              order[static_cast<std::size_t>(island_end - 1)]);
    }
    i = island_end;
  }
  return topo;
}

}  // namespace gsalert::workload
