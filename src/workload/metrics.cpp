#include "workload/metrics.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gsalert::workload {

std::optional<std::uint64_t> chaos_seed_arg(int argc, char** argv) {
  constexpr const char* kFlag = "--chaos-seed=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      return std::strtoull(argv[i] + std::strlen(kFlag), nullptr, 10);
    }
  }
  return std::nullopt;
}

void print_table_header(const std::string& title,
                        const std::string& columns) {
  std::printf("\n=== %s ===\n%s\n", title.c_str(), columns.c_str());
}

void print_row(const std::string& row) {
  std::printf("%s\n", row.c_str());
}

void record_outcome(obs::MetricsRegistry& registry, const Outcome& outcome,
                    const obs::Labels& labels) {
  registry.counter("outcome.events_published", labels) =
      outcome.events_published;
  registry.counter("outcome.expected_notifications", labels) =
      outcome.expected_notifications;
  registry.counter("outcome.delivered_matching", labels) =
      outcome.delivered_matching;
  registry.counter("outcome.false_positives", labels) =
      outcome.false_positives;
  registry.counter("outcome.false_negatives", labels) =
      outcome.false_negatives;
  registry.counter("outcome.messages_sent", labels) = outcome.messages_sent;
  registry.counter("outcome.bytes_sent", labels) = outcome.bytes_sent;
  registry.counter("outcome.bytes_copied", labels) = outcome.bytes_copied;
  registry.counter("outcome.bytes_shared", labels) = outcome.bytes_shared;
  registry.gauge("outcome.max_over_mean_node_load", labels) =
      outcome.max_over_mean_node_load;
  Histogram& latency =
      registry.histogram("outcome.notification_latency_ms", labels);
  latency = outcome.notification_latency_ms;
  outcome.latency.export_to(registry, labels);
}

bool write_bench_json(const std::string& name,
                      const obs::MetricsRegistry& registry,
                      const BenchMeta& meta) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "write_bench_json: cannot open %s\n", path.c_str());
    return false;
  }
  const std::string json =
      "{\"bench\":\"" + name + "\",\"meta\":{\"topology\":\"" +
      meta.topology + "\",\"regions\":" + std::to_string(meta.regions) +
      "},\"metrics\":" + registry.json() + "}\n";
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  if (std::fclose(f) != 0 || !ok) {
    std::fprintf(stderr, "write_bench_json: failed writing %s\n",
                 path.c_str());
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace gsalert::workload
