#include "workload/metrics.h"

#include <cstdio>

namespace gsalert::workload {

void print_table_header(const std::string& title,
                        const std::string& columns) {
  std::printf("\n=== %s ===\n%s\n", title.c_str(), columns.c_str());
}

void print_row(const std::string& row) {
  std::printf("%s\n", row.c_str());
}

}  // namespace gsalert::workload
