#include "workload/metrics.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gsalert::workload {

std::optional<std::uint64_t> chaos_seed_arg(int argc, char** argv) {
  constexpr const char* kFlag = "--chaos-seed=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      return std::strtoull(argv[i] + std::strlen(kFlag), nullptr, 10);
    }
  }
  return std::nullopt;
}

void print_table_header(const std::string& title,
                        const std::string& columns) {
  std::printf("\n=== %s ===\n%s\n", title.c_str(), columns.c_str());
}

void print_row(const std::string& row) {
  std::printf("%s\n", row.c_str());
}

}  // namespace gsalert::workload
