// Baseline B3 — rendezvous-node routing in the style of Scribe /
// Hermes'02 (paper §2.2): a profile's "topic" (the collection it watches)
// is hashed to one of a fixed set of rendezvous brokers; subscriptions are
// stored there, events are sent there, matching happens there.
//
// The paper's objections, which bench E6 quantifies: a rendezvous node is
// a load hotspot, and when it (or its links) fail, events for its topics
// are silently lost — false negatives — while cancelled profiles it holds
// keep matching — false positives.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/messages.h"
#include "baselines/subscription_base.h"
#include "profiles/index.h"
#include "sim/node.h"

namespace gsalert::baselines {

/// Derive the rendezvous topic from a profile: the value of its first
/// macro equality predicate on "ref" (collection-qualified profiles), else
/// the catch-all topic "*". Events use their collection ref.
std::string rendezvous_topic_of_profile(const profiles::Profile& profile);
std::size_t rendezvous_bucket(const std::string& topic, std::size_t n);

/// One rendezvous broker.
class RendezvousBroker : public sim::Node {
 public:
  void on_packet(NodeId from, const sim::Packet& packet) override;

  std::size_t profile_count() const { return index_.profile_count(); }
  std::uint64_t events_received() const { return events_received_; }

 private:
  profiles::ProfileIndex index_;
  std::unordered_map<profiles::ProfileId, std::pair<NodeId, SubscriptionId>>
      owners_;
  std::unordered_map<std::uint64_t, profiles::ProfileId> by_owner_;
  profiles::ProfileId next_id_ = 1;
  std::uint64_t events_received_ = 0;
  std::uint64_t next_msg_ = 1;
};

class RendezvousAlerting : public SubscriptionExtensionBase {
 public:
  explicit RendezvousAlerting(std::vector<NodeId> brokers)
      : brokers_(std::move(brokers)) {}

  void on_local_event(const docmodel::Event& event) override;

 protected:
  void on_subscribed(const Sub& sub, profiles::Profile profile) override;
  void on_cancelled(SubscriptionId id, const Sub& sub) override;
  bool handle_strategy_envelope(NodeId from,
                                const wire::Envelope& env) override;

 private:
  NodeId broker_for(const std::string& topic) const;

  std::vector<NodeId> brokers_;
  // Remember each subscription's topic so cancel routes identically.
  std::unordered_map<SubscriptionId, std::string> topic_of_;
};

}  // namespace gsalert::baselines
