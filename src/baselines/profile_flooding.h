// Baseline B2 — profile flooding over a broker overlay in the style of
// Siena/Rebeca (paper §2.2): every subscription is flooded to every broker
// (here: every DL server, over its GS-network neighbor links); events are
// matched where they occur and notifications unicast back to the owner.
//
// This is the strategy the paper rejects for Greenstone: on a fragmented,
// churning network, cancellations cannot reach disconnected brokers, which
// keep ORPHAN PROFILES and emit spurious notifications (false positives) —
// exactly what experiment E5 measures.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "baselines/messages.h"
#include "baselines/subscription_base.h"
#include "profiles/index.h"

namespace gsalert::baselines {

struct ProfileFloodStats {
  std::uint64_t profiles_stored = 0;     // remote profiles currently held
  std::uint64_t floods_forwarded = 0;
  std::uint64_t duplicate_floods = 0;
  std::uint64_t remote_notifies = 0;     // notifications sent to owners
  /// Notifications that arrived for a subscription that no longer exists —
  /// the user-visible symptom of an orphan profile on a broker that missed
  /// the cancellation (experiment E5's false-positive count).
  std::uint64_t orphan_notifications = 0;
};

class ProfileFloodAlerting : public SubscriptionExtensionBase {
 public:
  /// covering: merge identical subscriptions before flooding (the
  /// Rebeca-style covering/merging optimization in its
  /// identical-profiles special case, paper §2.2): one flooded entry
  /// represents every local subscription with the same text; remote
  /// matches are expanded back to all members at the owner.
  explicit ProfileFloodAlerting(bool covering = false)
      : covering_(covering) {}

  /// Overlay neighbor (a GS-network link to another server running the
  /// same strategy).
  void add_neighbor(const std::string& host, NodeId node);

  void on_local_event(const docmodel::Event& event) override;

  const ProfileFloodStats& flood_stats() const { return stats_; }
  std::size_t remote_profile_count() const {
    return remote_index_.profile_count();
  }

 protected:
  void on_subscribed(const Sub& sub, profiles::Profile profile) override;
  void on_cancelled(SubscriptionId id, const Sub& sub) override;
  bool handle_strategy_envelope(NodeId from,
                                const wire::Envelope& env) override;

 private:
  void flood(const RemoteProfileBody& body, NodeId except);
  void apply_remote(const RemoteProfileBody& body, NodeId from);
  /// Deliver a matched event to the owner-side subscription(s) behind a
  /// flooded id (one sub, or all merged members under covering).
  void deliver_owned(SubscriptionId flooded_id, const docmodel::Event& event);

  bool covering_;
  /// Covering state: profile text -> representative flooded id + members.
  struct MergeEntry {
    SubscriptionId rep_id = 0;
    std::set<SubscriptionId> members;
  };
  std::map<std::string, MergeEntry> merged_;
  std::unordered_map<SubscriptionId, std::string> rep_text_;

  std::vector<std::pair<std::string, NodeId>> neighbors_;
  // All profiles known here, local and remote, keyed by a dense id.
  profiles::ProfileIndex remote_index_;
  profiles::ProfileId next_remote_id_ = 1;
  // (owner server, owner sub id) -> local dense id.
  std::unordered_map<std::string, profiles::ProfileId> remote_by_owner_;
  // dense id -> (owner server name, owner sub id).
  std::unordered_map<profiles::ProfileId,
                     std::pair<std::string, SubscriptionId>>
      owners_;
  // Flood dedup: "owner#seq" seen.
  std::unordered_set<std::string> seen_floods_;
  std::uint64_t next_flood_seq_ = 1;
  ProfileFloodStats stats_;
};

}  // namespace gsalert::baselines
