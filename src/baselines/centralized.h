// Baseline B1 — a centralized alerting service in the style of
// SIFT/Hermes'01 (paper §2.1): one central server holds every profile;
// every event is unicast to it; notifications route back through the
// subscriber's home DL server. The bench measures the central node's load
// concentration and the outage cost when it fails.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>

#include "baselines/messages.h"
#include "baselines/subscription_base.h"
#include "profiles/index.h"
#include "sim/node.h"

namespace gsalert::baselines {

/// The central matching node. Profiles from all servers are indexed here.
class CentralServer : public sim::Node {
 public:
  void on_packet(NodeId from, const sim::Packet& packet) override;

  std::size_t profile_count() const { return index_.profile_count(); }
  std::uint64_t events_matched() const { return events_matched_; }

 private:
  profiles::ProfileIndex index_;
  // Dense central ids; maps back to (owner server node, owner sub id).
  std::unordered_map<profiles::ProfileId, std::pair<NodeId, SubscriptionId>>
      owners_;
  // (owner node value, owner sub id) -> central id, for unsubscribes.
  std::unordered_map<std::uint64_t, profiles::ProfileId> by_owner_;
  profiles::ProfileId next_id_ = 1;
  std::uint64_t events_matched_ = 0;
  std::uint64_t next_msg_ = 1;
};

/// Per-DL-server extension: forwards subscriptions and events to the
/// central node and relays notifications back to clients.
class CentralizedAlerting : public SubscriptionExtensionBase {
 public:
  explicit CentralizedAlerting(NodeId central) : central_(central) {}

  void on_local_event(const docmodel::Event& event) override;

 protected:
  void on_subscribed(const Sub& sub, profiles::Profile profile) override;
  void on_cancelled(SubscriptionId id, const Sub& sub) override;
  bool handle_strategy_envelope(NodeId from,
                                const wire::Envelope& env) override;

 private:
  NodeId central_;
};

}  // namespace gsalert::baselines
