#include "baselines/profile_flooding.h"

#include "alerting/messages.h"
#include "profiles/event_context.h"
#include "profiles/parser.h"

namespace gsalert::baselines {

namespace {
std::string owner_key(const std::string& server, SubscriptionId sub) {
  return server + "#" + std::to_string(sub);
}
std::string flood_key(const std::string& server, std::uint64_t seq) {
  return server + "@" + std::to_string(seq);
}
}  // namespace

void ProfileFloodAlerting::add_neighbor(const std::string& host,
                                        NodeId node) {
  neighbors_.emplace_back(host, node);
}

void ProfileFloodAlerting::flood(const RemoteProfileBody& body,
                                 NodeId except) {
  wire::Writer w;
  body.encode(w);
  const wire::Envelope env = wire::make_envelope(
      wire::MessageType::kProfileFlood, server_->name(), "",
      server_->next_msg_id(), std::move(w));
  for (const auto& [host, node] : neighbors_) {
    if (node == except) continue;
    server_->send_to(node, env);
    stats_.floods_forwarded += 1;
  }
}

void ProfileFloodAlerting::apply_remote(const RemoteProfileBody& body,
                                        NodeId /*from*/) {
  const std::string key = owner_key(body.owner_server, body.owner_sub_id);
  if (body.remove) {
    const auto it = remote_by_owner_.find(key);
    if (it != remote_by_owner_.end()) {
      (void)remote_index_.remove(it->second);
      owners_.erase(it->second);
      remote_by_owner_.erase(it);
    }
    return;
  }
  if (remote_by_owner_.contains(key)) return;  // re-flood of known profile
  auto parsed = profiles::parse_profile(body.profile_text);
  if (!parsed.ok()) return;
  const profiles::ProfileId id = next_remote_id_++;
  parsed.value().id = id;
  if (remote_index_.add(std::move(parsed).take()).is_ok()) {
    remote_by_owner_[key] = id;
    owners_[id] = {body.owner_server, body.owner_sub_id};
    stats_.profiles_stored += 1;
  }
}

void ProfileFloodAlerting::on_subscribed(const Sub& sub,
                                         profiles::Profile profile) {
  if (covering_) {
    MergeEntry& entry = merged_[sub.profile_text];
    entry.members.insert(profile.id);
    if (entry.members.size() > 1) return;  // covered: already flooded
    entry.rep_id = profile.id;
    rep_text_[profile.id] = sub.profile_text;
  }
  RemoteProfileBody body;
  body.owner_server = server_->name();
  body.owner_sub_id = profile.id;
  body.profile_text = sub.profile_text;
  body.flood_seq = next_flood_seq_++;
  seen_floods_.insert(flood_key(body.owner_server, body.flood_seq));
  apply_remote(body, NodeId::invalid());  // store locally too
  flood(body, NodeId::invalid());
}

void ProfileFloodAlerting::on_cancelled(SubscriptionId id, const Sub& sub) {
  SubscriptionId flooded_id = id;
  if (covering_) {
    const auto it = merged_.find(sub.profile_text);
    if (it == merged_.end()) return;
    it->second.members.erase(id);
    if (!it->second.members.empty()) return;  // others still covered by it
    flooded_id = it->second.rep_id;
    rep_text_.erase(flooded_id);
    merged_.erase(it);
  }
  RemoteProfileBody body;
  body.owner_server = server_->name();
  body.owner_sub_id = flooded_id;
  body.remove = true;
  body.flood_seq = next_flood_seq_++;
  seen_floods_.insert(flood_key(body.owner_server, body.flood_seq));
  apply_remote(body, NodeId::invalid());
  flood(body, NodeId::invalid());
}

void ProfileFloodAlerting::deliver_owned(SubscriptionId flooded_id,
                                         const docmodel::Event& event) {
  if (covering_) {
    const auto text = rep_text_.find(flooded_id);
    if (text == rep_text_.end()) {
      stats_.orphan_notifications += 1;
      return;
    }
    for (SubscriptionId member : merged_[text->second].members) {
      notify_client(member, event);
    }
    return;
  }
  if (!subs_.contains(flooded_id)) {
    stats_.orphan_notifications += 1;
    return;
  }
  notify_client(flooded_id, event);
}

void ProfileFloodAlerting::on_local_event(const docmodel::Event& event) {
  const profiles::EventContext ctx = profiles::EventContext::from(event);
  for (profiles::ProfileId id : remote_index_.match(ctx)) {
    const auto owner = owners_.find(id);
    if (owner == owners_.end()) continue;
    if (owner->second.first == server_->name()) {
      deliver_owned(owner->second.second, event);
      continue;
    }
    // Remote owner: unicast the notification to the owner's server, which
    // relays it to the user (direct host reference, favourable to B2).
    const NodeId dest = server_->host_ref(owner->second.first);
    if (!dest.valid()) continue;
    alerting::NotificationBody note;
    note.subscription_id = owner->second.second;
    note.event = event;
    wire::Writer w;
    note.encode(w);
    server_->send_to(dest,
                     wire::make_envelope(wire::MessageType::kFloodNotify,
                                         server_->name(), "",
                                         server_->next_msg_id(),
                                         std::move(w)));
    stats_.remote_notifies += 1;
  }
}

bool ProfileFloodAlerting::handle_strategy_envelope(NodeId from,
                                                    const wire::Envelope& env) {
  switch (env.type) {
    case wire::MessageType::kProfileFlood: {
      auto body = RemoteProfileBody::decode(env.body);
      if (!body.ok()) return true;
      const RemoteProfileBody& msg = body.value();
      if (!seen_floods_.insert(flood_key(msg.owner_server, msg.flood_seq))
               .second) {
        stats_.duplicate_floods += 1;
        return true;
      }
      apply_remote(msg, from);
      flood(msg, from);
      return true;
    }
    case wire::MessageType::kFloodNotify: {
      auto body = alerting::NotificationBody::decode(env.body);
      if (!body.ok()) return true;
      // If the flooded id no longer maps to a live subscription, the
      // remote broker matched an orphan profile: the cancellation never
      // reached it (it was disconnected). deliver_owned counts that —
      // the false-positive pathology of profile flooding (paper §2.2).
      deliver_owned(body.value().subscription_id, body.value().event);
      return true;
    }
    default:
      return false;
  }
}

}  // namespace gsalert::baselines
