#include "baselines/subscription_base.h"

#include "profiles/parser.h"

namespace gsalert::baselines {

bool SubscriptionExtensionBase::handle_envelope(NodeId from,
                                                const wire::Envelope& env) {
  switch (env.type) {
    case wire::MessageType::kSubscribe: {
      auto body = alerting::SubscribeBody::decode(env.body);
      alerting::SubscribeAckBody ack;
      ack.request_id = env.msg_id;
      if (!body.ok()) {
        ack.error = body.error().str();
      } else {
        auto parsed = profiles::parse_profile(body.value().profile_text);
        if (!parsed.ok()) {
          ack.error = parsed.error().str();
        } else {
          const SubscriptionId id = next_sub_++;
          parsed.value().id = id;
          Sub sub{from, body.value().profile_text};
          subs_[id] = sub;
          on_subscribed(sub, std::move(parsed).take());
          ack.ok = true;
          ack.subscription_id = id;
        }
      }
      wire::Writer w;
      ack.encode(w);
      server_->send_to(from,
                       wire::make_envelope(wire::MessageType::kSubscribeAck,
                                           server_->name(), "", env.msg_id,
                                           std::move(w)));
      return true;
    }
    case wire::MessageType::kCancelSubscription: {
      auto body = alerting::CancelBody::decode(env.body);
      if (!body.ok()) return true;
      const auto it = subs_.find(body.value().subscription_id);
      if (it != subs_.end()) {
        const Sub sub = it->second;
        subs_.erase(it);
        on_cancelled(body.value().subscription_id, sub);
      }
      return true;
    }
    case wire::MessageType::kRvAck:
      (void)endpoint_.complete(env.msg_id, env);
      return true;
    default:
      return handle_strategy_envelope(from, env);
  }
}

void SubscriptionExtensionBase::on_timer_token(std::uint64_t token) {
  (void)endpoint_.on_timer(token);
}

void SubscriptionExtensionBase::reliable_control(NodeId to,
                                                 wire::Envelope env) {
  if (!endpoint_.attached()) {
    endpoint_.attach(&server_->net(), server_->id(), server_->name(),
                     kEndpointTag, 0xBA5E11E5ULL ^ server_->id().value());
  }
  const std::uint64_t key = env.msg_id;
  endpoint_.request(key, std::move(env), {.to = to},
                    [](const wire::Envelope*) {
                      // Nothing to do on ack; a deadline means the broker
                      // stayed unreachable and the control message is
                      // dropped (bounded persistence, not a full outbox).
                    });
}

void SubscriptionExtensionBase::notify_client(SubscriptionId id,
                                              const docmodel::Event& event) {
  const auto it = subs_.find(id);
  if (it == subs_.end()) return;
  // Same wire shape as the gsalert delivery stage: bare event payload in
  // the body, subscription id in msg_id.
  server_->send_to(it->second.client,
                   wire::make_envelope(wire::MessageType::kNotification,
                                       server_->name(), "", id,
                                       wire::Frame{alerting::encode_event(
                                           event)}));
  notifications_sent_ += 1;
}

}  // namespace gsalert::baselines
