#include "baselines/centralized.h"

#include "alerting/messages.h"
#include "profiles/event_context.h"
#include "profiles/parser.h"
#include "wire/envelope.h"

namespace gsalert::baselines {

namespace {
std::uint64_t owner_key(NodeId node, SubscriptionId sub) {
  return (static_cast<std::uint64_t>(node.value()) << 32) ^ sub;
}
}  // namespace

void CentralServer::on_packet(NodeId from, const sim::Packet& packet) {
  auto decoded = wire::unpack(packet);
  if (!decoded.ok()) return;
  const wire::Envelope& env = decoded.value();
  switch (env.type) {
    case wire::MessageType::kRvSubscribe: {
      // Ack first — even a malformed control message must stop the
      // sender's retransmit loop (retrying cannot fix it).
      network().send(this->id(), from,
                     wire::make_envelope(wire::MessageType::kRvAck, name(),
                                         env.src, env.msg_id, wire::Writer{})
                         .pack());
      auto body = RemoteProfileBody::decode(env.body);
      if (!body.ok()) return;
      const RemoteProfileBody& msg = body.value();
      const std::uint64_t key = owner_key(from, msg.owner_sub_id);
      if (msg.remove) {
        const auto it = by_owner_.find(key);
        if (it != by_owner_.end()) {
          (void)index_.remove(it->second);
          owners_.erase(it->second);
          by_owner_.erase(it);
        }
        return;
      }
      auto parsed = profiles::parse_profile(msg.profile_text);
      if (!parsed.ok()) return;
      const profiles::ProfileId id = next_id_++;
      parsed.value().id = id;
      if (index_.add(std::move(parsed).take()).is_ok()) {
        owners_[id] = {from, msg.owner_sub_id};
        by_owner_[key] = id;
      }
      return;
    }
    case wire::MessageType::kCentralPublish: {
      auto event = alerting::decode_event(env.body);
      if (!event.ok()) return;
      const profiles::EventContext ctx =
          profiles::EventContext::from(event.value());
      for (profiles::ProfileId id : index_.match(ctx)) {
        const auto owner = owners_.find(id);
        if (owner == owners_.end()) continue;
        alerting::NotificationBody note;
        note.subscription_id = owner->second.second;
        note.event = event.value();
        wire::Writer w;
        note.encode(w);
        network().send(this->id(), owner->second.first,
                       wire::make_envelope(wire::MessageType::kCentralNotify,
                                           name(), "", next_msg_++,
                                           std::move(w))
                           .pack());
        events_matched_ += 1;
      }
      return;
    }
    default:
      return;
  }
}

void CentralizedAlerting::on_subscribed(const Sub& sub,
                                        profiles::Profile profile) {
  RemoteProfileBody body;
  body.owner_server = server_->name();
  body.owner_sub_id = profile.id;
  body.profile_text = sub.profile_text;
  wire::Writer w;
  body.encode(w);
  reliable_control(central_,
                   wire::make_envelope(wire::MessageType::kRvSubscribe,
                                       server_->name(), "",
                                       server_->next_msg_id(),
                                       std::move(w)));
}

void CentralizedAlerting::on_cancelled(SubscriptionId id, const Sub& /*sub*/) {
  RemoteProfileBody body;
  body.owner_server = server_->name();
  body.owner_sub_id = id;
  body.remove = true;
  wire::Writer w;
  body.encode(w);
  reliable_control(central_,
                   wire::make_envelope(wire::MessageType::kRvSubscribe,
                                       server_->name(), "",
                                       server_->next_msg_id(),
                                       std::move(w)));
}

void CentralizedAlerting::on_local_event(const docmodel::Event& event) {
  wire::Writer w;
  event.encode(w);
  server_->send_to(central_,
                   wire::make_envelope(wire::MessageType::kCentralPublish,
                                       server_->name(), "",
                                       server_->next_msg_id(),
                                       std::move(w)));
}

bool CentralizedAlerting::handle_strategy_envelope(NodeId /*from*/,
                                                   const wire::Envelope& env) {
  if (env.type != wire::MessageType::kCentralNotify) return false;
  auto body = alerting::NotificationBody::decode(env.body);
  if (!body.ok()) return true;
  notify_client(body.value().subscription_id, body.value().event);
  return true;
}

}  // namespace gsalert::baselines
