#include "baselines/messages.h"

namespace gsalert::baselines {

void RemoteProfileBody::encode(wire::Writer& w) const {
  w.str(owner_server);
  w.u64(owner_sub_id);
  w.str(profile_text);
  w.boolean(remove);
  w.u64(flood_seq);
}

Result<RemoteProfileBody> RemoteProfileBody::decode(
    std::span<const std::byte> body) {
  wire::Reader r{body};
  RemoteProfileBody out;
  out.owner_server = r.str();
  out.owner_sub_id = r.u64();
  out.profile_text = r.str();
  out.remove = r.boolean();
  out.flood_seq = r.u64();
  if (!r.done()) {
    return Error{ErrorCode::kDecodeFailure, "RemoteProfileBody"};
  }
  return out;
}

}  // namespace gsalert::baselines
