#include "baselines/gs_flooding.h"

#include "alerting/messages.h"
#include "profiles/event_context.h"
#include "wire/envelope.h"

namespace gsalert::baselines {

void GsFloodAlerting::add_neighbor(const std::string& host, NodeId node) {
  neighbors_.emplace_back(host, node);
}

void GsFloodAlerting::on_subscribed(const Sub& /*sub*/,
                                    profiles::Profile profile) {
  (void)index_.add(std::move(profile));
}

void GsFloodAlerting::on_cancelled(SubscriptionId id, const Sub&) {
  (void)index_.remove(id);
}

void GsFloodAlerting::filter_local(const docmodel::Event& event) {
  const profiles::EventContext ctx = profiles::EventContext::from(event);
  for (profiles::ProfileId id : index_.match(ctx)) {
    notify_client(id, event);
  }
}

void GsFloodAlerting::forward(const docmodel::Event& event,
                              std::uint16_t ttl, NodeId except) {
  if (ttl == 0) return;
  wire::Writer w;
  event.encode(w);
  wire::Envelope env = wire::make_envelope(
      wire::MessageType::kGsFlood, server_->name(), "",
      server_->next_msg_id(), std::move(w));
  env.ttl = ttl;
  for (const auto& [host, node] : neighbors_) {
    if (node == except) continue;
    server_->send_to(node, env);
    stats_.forwards += 1;
  }
}

void GsFloodAlerting::on_local_event(const docmodel::Event& event) {
  seen_.insert(event.id);
  stats_.events_flooded += 1;
  filter_local(event);
  forward(event, ttl_, NodeId::invalid());
}

bool GsFloodAlerting::handle_strategy_envelope(NodeId from,
                                               const wire::Envelope& env) {
  if (env.type != wire::MessageType::kGsFlood) return false;
  auto event = alerting::decode_event(env.body);
  if (!event.ok()) return true;
  const bool seen_before = seen_.contains(event.value().id);
  if (seen_before) {
    stats_.duplicates += 1;
    if (dedup_enabled_) return true;
    // Without dedup the event is processed (and re-forwarded) again — the
    // duplicate/livelock pathology on cyclic topologies.
  } else {
    seen_.insert(event.value().id);
  }
  stats_.events_received += 1;
  if (!seen_before) filter_local(event.value());
  forward(event.value(), static_cast<std::uint16_t>(env.ttl - 1), from);
  return true;
}

}  // namespace gsalert::baselines
