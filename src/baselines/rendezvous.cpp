#include "baselines/rendezvous.h"

#include <functional>

#include "alerting/messages.h"
#include "common/strings.h"
#include "profiles/event_context.h"
#include "profiles/parser.h"
#include "wire/envelope.h"

namespace gsalert::baselines {

std::string rendezvous_topic_of_profile(const profiles::Profile& profile) {
  for (const auto& conj : profile.dnf) {
    for (const auto& pred : conj.preds) {
      if (pred.op == profiles::Op::kEq && pred.attribute == "ref") {
        return pred.value;
      }
    }
  }
  return "*";
}

std::size_t rendezvous_bucket(const std::string& topic, std::size_t n) {
  return std::hash<std::string>{}(topic) % n;
}

namespace {
std::uint64_t owner_key(NodeId node, SubscriptionId sub) {
  return (static_cast<std::uint64_t>(node.value()) << 32) ^ sub;
}
}  // namespace

void RendezvousBroker::on_packet(NodeId from, const sim::Packet& packet) {
  auto decoded = wire::unpack(packet);
  if (!decoded.ok()) return;
  const wire::Envelope& env = decoded.value();
  switch (env.type) {
    case wire::MessageType::kRvSubscribe:
    case wire::MessageType::kRvUnsubscribe: {
      // Ack first — even a malformed control message must stop the
      // sender's retransmit loop (retrying cannot fix it).
      network().send(this->id(), from,
                     wire::make_envelope(wire::MessageType::kRvAck, name(),
                                         env.src, env.msg_id, wire::Writer{})
                         .pack());
      auto body = RemoteProfileBody::decode(env.body);
      if (!body.ok()) return;
      const RemoteProfileBody& msg = body.value();
      const std::uint64_t key = owner_key(from, msg.owner_sub_id);
      if (msg.remove || env.type == wire::MessageType::kRvUnsubscribe) {
        const auto it = by_owner_.find(key);
        if (it != by_owner_.end()) {
          (void)index_.remove(it->second);
          owners_.erase(it->second);
          by_owner_.erase(it);
        }
        return;
      }
      auto parsed = profiles::parse_profile(msg.profile_text);
      if (!parsed.ok()) return;
      const profiles::ProfileId id = next_id_++;
      parsed.value().id = id;
      if (index_.add(std::move(parsed).take()).is_ok()) {
        owners_[id] = {from, msg.owner_sub_id};
        by_owner_[key] = id;
      }
      return;
    }
    case wire::MessageType::kRvPublish: {
      auto event = alerting::decode_event(env.body);
      if (!event.ok()) return;
      events_received_ += 1;
      const profiles::EventContext ctx =
          profiles::EventContext::from(event.value());
      for (profiles::ProfileId id : index_.match(ctx)) {
        const auto owner = owners_.find(id);
        if (owner == owners_.end()) continue;
        alerting::NotificationBody note;
        note.subscription_id = owner->second.second;
        note.event = event.value();
        wire::Writer w;
        note.encode(w);
        network().send(this->id(), owner->second.first,
                       wire::make_envelope(wire::MessageType::kRvNotify,
                                           name(), "", next_msg_++,
                                           std::move(w))
                           .pack());
      }
      return;
    }
    default:
      return;
  }
}

NodeId RendezvousAlerting::broker_for(const std::string& topic) const {
  return brokers_[rendezvous_bucket(topic, brokers_.size())];
}

void RendezvousAlerting::on_subscribed(const Sub& sub,
                                       profiles::Profile profile) {
  const std::string topic = rendezvous_topic_of_profile(profile);
  topic_of_[profile.id] = topic;
  RemoteProfileBody body;
  body.owner_server = server_->name();
  body.owner_sub_id = profile.id;
  body.profile_text = sub.profile_text;
  wire::Writer w;
  body.encode(w);
  reliable_control(broker_for(topic),
                   wire::make_envelope(wire::MessageType::kRvSubscribe,
                                       server_->name(), "",
                                       server_->next_msg_id(),
                                       std::move(w)));
}

void RendezvousAlerting::on_cancelled(SubscriptionId id, const Sub&) {
  const auto it = topic_of_.find(id);
  if (it == topic_of_.end()) return;
  RemoteProfileBody body;
  body.owner_server = server_->name();
  body.owner_sub_id = id;
  body.remove = true;
  wire::Writer w;
  body.encode(w);
  reliable_control(broker_for(it->second),
                   wire::make_envelope(wire::MessageType::kRvUnsubscribe,
                                       server_->name(), "",
                                       server_->next_msg_id(),
                                       std::move(w)));
  topic_of_.erase(it);
}

void RendezvousAlerting::on_local_event(const docmodel::Event& event) {
  wire::Writer w;
  event.encode(w);
  const wire::Envelope env = wire::make_envelope(
      wire::MessageType::kRvPublish, server_->name(), "",
      server_->next_msg_id(), std::move(w));
  // The event goes to its own topic's broker and to the catch-all broker
  // (which holds the unkeyed profiles). Send once if they coincide.
  const NodeId topical = broker_for(to_lower(event.collection.str()));
  const NodeId catch_all = broker_for("*");
  server_->send_to(topical, env);
  if (catch_all != topical) server_->send_to(catch_all, env);
}

bool RendezvousAlerting::handle_strategy_envelope(NodeId /*from*/,
                                                  const wire::Envelope& env) {
  if (env.type != wire::MessageType::kRvNotify) return false;
  auto body = alerting::NotificationBody::decode(env.body);
  if (!body.ok()) return true;
  notify_client(body.value().subscription_id, body.value().event);
  return true;
}

}  // namespace gsalert::baselines
