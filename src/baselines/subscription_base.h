// Shared plumbing for baseline alerting extensions: the client-facing
// subscribe/cancel/notify protocol, identical to the real service so the
// same Client nodes and workloads drive every strategy.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "alerting/messages.h"
#include "common/types.h"
#include "gsnet/greenstone_server.h"
#include "gsnet/server_extension.h"
#include "profiles/profile.h"
#include "transport/endpoint.h"

namespace gsalert::baselines {

class SubscriptionExtensionBase : public gsnet::ServerExtension {
 public:
  std::size_t subscription_count() const { return subs_.size(); }

  bool handle_envelope(NodeId from, const wire::Envelope& env) override;
  void on_timer_token(std::uint64_t token) override;

  /// Retransmit/timeout counters for broker control messages.
  const transport::EndpointStats& endpoint_stats() const {
    return endpoint_.stats();
  }

 protected:
  struct Sub {
    NodeId client;
    std::string profile_text;
  };

  /// Strategy hooks invoked after the subscription table was updated.
  /// `profile` arrives parsed with id == subscription id.
  virtual void on_subscribed(const Sub& sub, profiles::Profile profile) = 0;
  virtual void on_cancelled(SubscriptionId id, const Sub& sub) = 0;
  /// Messages of the strategy's own protocol.
  virtual bool handle_strategy_envelope(NodeId from,
                                        const wire::Envelope& env) = 0;

  /// Deliver an event to the client of a local subscription.
  void notify_client(SubscriptionId id, const docmodel::Event& event);

  /// Send a broker control message (subscribe/unsubscribe) through the
  /// transport endpoint: retransmitted with backoff until the broker's
  /// kRvAck (echoing msg_id) arrives or the deadline passes. Publishes
  /// remain fire-and-forget — the lossiness the benches measure is the
  /// event path, not the control plane.
  void reliable_control(NodeId to, wire::Envelope env);

  /// Endpoint tag (Endpoint::kTagShift) for control-message timers;
  /// distinct from the host server's (1) and its GDS client's (2).
  static constexpr std::uint8_t kEndpointTag = 3;

  std::map<SubscriptionId, Sub> subs_;
  SubscriptionId next_sub_ = 1;
  std::uint64_t notifications_sent_ = 0;
  transport::Endpoint endpoint_;

 public:
  std::uint64_t notifications_sent() const { return notifications_sent_; }
};

}  // namespace gsalert::baselines
