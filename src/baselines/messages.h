// Payloads shared by the baseline alerting strategies (DESIGN.md S10).
// The event payload and client notification reuse the alerting module's
// encodings; this header adds profile-propagation messages.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "wire/codec.h"

namespace gsalert::baselines {

/// A profile traveling away from its owner: to the central server (B1),
/// flooded broker-to-broker (B2), or to a rendezvous node (B3).
/// (owner_server, owner_sub_id) identifies the subscription; `remove`
/// turns the message into an unsubscription. For flooding, (owner_server,
/// flood_seq) is the duplicate-suppression key.
struct RemoteProfileBody {
  std::string owner_server;
  std::uint64_t owner_sub_id = 0;
  std::string profile_text;
  bool remove = false;
  std::uint64_t flood_seq = 0;

  void encode(wire::Writer& w) const;
  static Result<RemoteProfileBody> decode(std::span<const std::byte> body);
};

}  // namespace gsalert::baselines
