// Baseline B4 — naive event flooding over the raw Greenstone network
// (what the paper argues AGAINST using, §1/§4): events travel the existing
// GS links themselves. On the real Greenstone topology this fails two
// ways, which bench E7 measures:
//   - islands: most servers are solitary, so events never reach them
//     (false negatives), and
//   - cycles: without duplicate suppression, events circulate until TTL
//     exhausts, multiplying traffic.
// Duplicate suppression is a switch so the ablation can separate the two.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "baselines/subscription_base.h"
#include "profiles/index.h"

namespace gsalert::baselines {

struct GsFloodStats {
  std::uint64_t events_flooded = 0;     // local events injected
  std::uint64_t events_received = 0;    // flood messages accepted
  std::uint64_t duplicates = 0;         // seen again (suppressed or not)
  std::uint64_t forwards = 0;           // flood messages sent on
};

class GsFloodAlerting : public SubscriptionExtensionBase {
 public:
  explicit GsFloodAlerting(bool dedup_enabled = true,
                           std::uint16_t ttl = 16)
      : dedup_enabled_(dedup_enabled), ttl_(ttl) {}

  void add_neighbor(const std::string& host, NodeId node);

  void on_local_event(const docmodel::Event& event) override;

  const GsFloodStats& flood_stats() const { return stats_; }

 protected:
  void on_subscribed(const Sub& sub, profiles::Profile profile) override;
  void on_cancelled(SubscriptionId id, const Sub& sub) override;
  bool handle_strategy_envelope(NodeId from,
                                const wire::Envelope& env) override;

 private:
  void filter_local(const docmodel::Event& event);
  void forward(const docmodel::Event& event, std::uint16_t ttl,
               NodeId except);

  bool dedup_enabled_;
  std::uint16_t ttl_;
  std::vector<std::pair<std::string, NodeId>> neighbors_;
  profiles::ProfileIndex index_;
  std::unordered_set<docmodel::EventId> seen_;
  GsFloodStats stats_;
};

}  // namespace gsalert::baselines
