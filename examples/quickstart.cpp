// Quickstart: the smallest complete GSAlert world.
//
// Two Greenstone servers register with a two-node GDS tree; a user at
// server "Waikato" subscribes to changes on host "Hamilton"; Hamilton
// builds a collection; the event floods the GDS and the user is notified.
//
//   ./quickstart
#include <cstdio>

#include "alerting/alerting_service.h"
#include "alerting/client.h"
#include "docmodel/collection.h"
#include "gds/tree_builder.h"
#include "gsnet/greenstone_server.h"
#include "sim/network.h"

using namespace gsalert;

int main() {
  sim::Network net{42};
  net.set_default_path({.latency = SimTime::millis(10)});

  // 1. A small GDS tree: one stratum-1 root with two stratum-2 children.
  gds::GdsTree tree = gds::build_tree(net, /*fanout=*/2, /*depth=*/2);

  // 2. Two Greenstone servers, each with the alerting service installed
  //    and registered at a GDS node.
  auto* hamilton = net.make_node<gsnet::GreenstoneServer>("Hamilton");
  hamilton->set_extension(std::make_unique<alerting::AlertingService>());
  hamilton->attach_gds(tree.nodes[1]->id());

  auto* waikato = net.make_node<gsnet::GreenstoneServer>("Waikato");
  waikato->set_extension(std::make_unique<alerting::AlertingService>());
  waikato->attach_gds(tree.nodes[2]->id());

  // 3. A user whose home server is Waikato.
  auto* user = net.make_node<alerting::Client>("ana");
  user->set_home(waikato->id());

  net.start();
  net.run_until(SimTime::millis(100));

  // 4. Subscribe: "tell me about anything new on Hamilton".
  user->subscribe("host = Hamilton AND type = collection_built",
                  [](Result<SubscriptionId> r) {
                    std::printf("subscribed: %s\n",
                                r.ok() ? "ok" : r.error().str().c_str());
                  });
  net.run_until(SimTime::millis(200));

  // 5. Hamilton builds a new collection.
  docmodel::CollectionConfig config;
  config.name = "NZHistory";
  config.indexed_attributes = {"title"};
  docmodel::Document doc;
  doc.id = 1;
  doc.metadata.add("title", "Treaty of Waitangi Papers");
  doc.terms = {"treaty", "waitangi", "history"};
  docmodel::DataSet data;
  data.add(doc);
  if (Status s = hamilton->add_collection(config, data); !s.is_ok()) {
    std::printf("build failed: %s\n", s.error().str().c_str());
    return 1;
  }

  net.run_until(SimTime::seconds(1));

  // 6. The notification arrived at the user via the GDS flood.
  for (const auto& note : user->notifications()) {
    std::printf("notified at t=%.0fms: %s in %s (%zu new document%s)\n",
                note.at.as_millis(),
                docmodel::event_type_name(note.event.type),
                note.event.collection.str().c_str(), note.event.docs.size(),
                note.event.docs.size() == 1 ? "" : "s");
  }
  return user->notifications().size() == 1 ? 0 : 1;
}
