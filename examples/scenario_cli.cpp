// Scenario CLI: run a configurable alerting experiment from the command
// line and print the outcome — a quick way to explore the design space
// without writing code.
//
//   ./scenario_cli --strategy=gsalert --servers=20 --events=30
//                  --profiles=2 --seed=7 [--partition] [--covering]
//                  [--trace-out=FILE]
//
// Strategies: gsalert | centralized | profile-flood | rendezvous | gs-flood
//
// --trace-out=FILE records every packet of the run as a causal span and
// writes Chrome trace_event JSON (chrome://tracing / Perfetto). The
// per-trace causal trees can get large; inspect the JSON for the full
// picture.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "obs/trace.h"
#include "obs/tracer.h"
#include "workload/scenario.h"

using namespace gsalert;
using workload::Scenario;
using workload::ScenarioConfig;
using workload::Strategy;

namespace {

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    out = arg + len + 1;
    return true;
  }
  return false;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: scenario_cli [--strategy=S] [--servers=N] [--events=N]\n"
      "                    [--profiles=N] [--seed=N] [--partition]\n"
      "                    [--covering] [--trace-out=FILE]\n"
      "strategies: gsalert centralized profile-flood rendezvous gs-flood\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioConfig config;
  config.n_servers = 12;
  config.clients_per_server = 2;
  int events = 20;
  int profiles_per_client = 2;
  bool partition_mid_run = false;
  std::optional<std::string> trace_out;
  // Healthy overlay by default so every strategy can play.
  config.topology = workload::TopologyGenConfig{
      .solitary_fraction = 0.0, .island_size = 100, .cycle_probability = 0.0};

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (parse_flag(argv[i], "--strategy", value)) {
      if (value == "gsalert") {
        config.strategy = Strategy::kGsAlert;
      } else if (value == "centralized") {
        config.strategy = Strategy::kCentralized;
      } else if (value == "profile-flood") {
        config.strategy = Strategy::kProfileFlooding;
      } else if (value == "rendezvous") {
        config.strategy = Strategy::kRendezvous;
      } else if (value == "gs-flood") {
        config.strategy = Strategy::kGsFlooding;
      } else {
        return usage();
      }
    } else if (parse_flag(argv[i], "--servers", value)) {
      config.n_servers = std::stoi(value);
    } else if (parse_flag(argv[i], "--events", value)) {
      events = std::stoi(value);
    } else if (parse_flag(argv[i], "--profiles", value)) {
      profiles_per_client = std::stoi(value);
    } else if (parse_flag(argv[i], "--seed", value)) {
      config.seed = std::stoull(value);
    } else if (parse_flag(argv[i], "--trace-out", value)) {
      trace_out = value;
    } else if (std::strcmp(argv[i], "--partition") == 0) {
      partition_mid_run = true;
    } else if (std::strcmp(argv[i], "--covering") == 0) {
      config.b2_covering = true;
    } else {
      return usage();
    }
  }

  obs::Tracer tracer;
  std::optional<obs::ScopedSink> tracing;
  if (trace_out.has_value()) {
    obs::reset_ids();
    tracing.emplace(&tracer);
  }

  Scenario scenario{config};
  scenario.setup_collections();
  scenario.subscribe_all(profiles_per_client);
  scenario.settle(SimTime::seconds(3));
  scenario.net().reset_stats();

  for (int i = 0; i < events; ++i) {
    if (partition_mid_run && i == events / 3) {
      // Split the world in half for the middle third of the run.
      std::vector<NodeId> island;
      for (std::size_t s = 0; s < scenario.servers().size() / 2; ++s) {
        island.push_back(scenario.servers()[s]->id());
      }
      scenario.net().set_partition({island});
      std::printf("[t=%.1fs] partition begins\n",
                  scenario.net().now().as_seconds());
    }
    if (partition_mid_run && i == 2 * events / 3) {
      scenario.net().clear_partition();
      std::printf("[t=%.1fs] partition heals\n",
                  scenario.net().now().as_seconds());
    }
    scenario.publish_random_rebuild(2);
    scenario.settle(SimTime::millis(250));
  }
  scenario.settle(SimTime::seconds(8));

  const workload::Outcome out = scenario.outcome();
  std::printf("\nstrategy            %s\n",
              workload::strategy_name(config.strategy));
  std::printf("servers / clients   %d / %zu\n", config.n_servers,
              scenario.clients().size());
  std::printf("events published    %llu\n",
              static_cast<unsigned long long>(out.events_published));
  std::printf("expected notifs     %llu\n",
              static_cast<unsigned long long>(out.expected_notifications));
  std::printf("delivered           %llu\n",
              static_cast<unsigned long long>(out.delivered_matching));
  std::printf("false negatives     %llu\n",
              static_cast<unsigned long long>(out.false_negatives));
  std::printf("false positives     %llu\n",
              static_cast<unsigned long long>(out.false_positives));
  if (!out.notification_latency_ms.empty()) {
    std::printf("latency ms          p50 %.0f  p99 %.0f  max %.0f\n",
                out.notification_latency_ms.p50(),
                out.notification_latency_ms.p99(),
                out.notification_latency_ms.max());
  }
  std::printf("wire messages       %llu (%llu bytes)\n",
              static_cast<unsigned long long>(out.messages_sent),
              static_cast<unsigned long long>(out.bytes_sent));
  std::printf("hotspot max/mean    %.1f\n", out.max_over_mean_node_load);
  if (trace_out.has_value()) {
    if (!tracer.write_chrome_trace(*trace_out)) {
      std::fprintf(stderr, "cannot write %s\n", trace_out->c_str());
      return 1;
    }
    std::printf("trace               %s (%zu spans, %zu traces)\n",
                trace_out->c_str(), tracer.spans().size(),
                tracer.trace_ids().size());
  }
  return 0;
}
