// Distributed collections — the paper's Figure 3 walkthrough.
//
// Hamilton.D includes the sub-collection London.E. Creating D makes
// Hamilton forward an AUXILIARY PROFILE to London ("when E changes, tell
// Hamilton.D"). When London rebuilds E, the event matches the auxiliary
// profile, travels the GS network to Hamilton, is RENAMED from London.E to
// Hamilton.D, and is re-broadcast through the GDS — so a user watching
// Hamilton.D hears about a change they could never have observed directly.
//
//   ./distributed_collection [--trace-out=trace.json]
//
// With --trace-out= every packet of the walkthrough is recorded as a
// span; the file is Chrome trace_event JSON (load in chrome://tracing
// or Perfetto) and the causal tree is printed to stdout — publish at
// London, GDS flood, aux-profile match, rename at Hamilton, re-broadcast.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "alerting/alerting_service.h"
#include "alerting/client.h"
#include "gds/tree_builder.h"
#include "gsnet/greenstone_server.h"
#include "obs/trace.h"
#include "obs/tracer.h"
#include "sim/network.h"

using namespace gsalert;

namespace {
docmodel::Document make_doc(DocumentId id, const char* title) {
  docmodel::Document d;
  d.id = id;
  d.metadata.add("title", title);
  d.terms = {"history"};
  return d;
}
}  // namespace

int main(int argc, char** argv) {
  std::optional<std::string> trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else {
      std::fprintf(stderr,
                   "usage: distributed_collection [--trace-out=FILE]\n");
      return 2;
    }
  }
  obs::Tracer tracer;
  std::optional<obs::ScopedSink> tracing;
  if (trace_out.has_value()) {
    obs::reset_ids();
    tracing.emplace(&tracer);
  }

  sim::Network net{3};
  net.set_default_path({.latency = SimTime::millis(20)});
  gds::GdsTree tree = gds::build_figure2_tree(net);

  auto* hamilton = net.make_node<gsnet::GreenstoneServer>("Hamilton");
  auto* london = net.make_node<gsnet::GreenstoneServer>("London");
  auto* berlin = net.make_node<gsnet::GreenstoneServer>("Berlin");
  auto ham_service = std::make_unique<alerting::AlertingService>();
  auto lon_service = std::make_unique<alerting::AlertingService>();
  const alerting::AlertingService* ham_stats = ham_service.get();
  const alerting::AlertingService* lon_stats = lon_service.get();
  hamilton->set_extension(std::move(ham_service));
  london->set_extension(std::move(lon_service));
  berlin->set_extension(std::make_unique<alerting::AlertingService>());
  hamilton->attach_gds(tree.nodes[2]->id());
  london->attach_gds(tree.nodes[5]->id());
  berlin->attach_gds(tree.nodes[6]->id());
  hamilton->set_host_ref("London", london->id());
  london->set_host_ref("Hamilton", hamilton->id());

  auto* user = net.make_node<alerting::Client>("reader-in-berlin");
  user->set_home(berlin->id());
  net.start();
  net.run_until(SimTime::millis(100));

  // London.E exists; Hamilton.D federates it.
  docmodel::CollectionConfig e_config;
  e_config.name = "E";
  e_config.indexed_attributes = {"title"};
  london->add_collection(e_config, docmodel::DataSet{{make_doc(5, "e-1")}});

  docmodel::CollectionConfig d_config;
  d_config.name = "D";
  d_config.indexed_attributes = {"title"};
  d_config.sub_collections = {CollectionRef{"London", "E"}};
  hamilton->add_collection(d_config, docmodel::DataSet{{make_doc(4, "d-1")}});
  net.run_until(net.now() + SimTime::seconds(2));

  std::printf("auxiliary profiles at London for E:");
  for (const auto& super :
       static_cast<const alerting::AlertingService&>(*lon_stats)
           .aux_profiles_for("E")) {
    std::printf(" %s", super.str().c_str());
  }
  std::printf("\n");

  // A reader in Berlin watches Hamilton.D — unaware that E exists.
  user->subscribe("ref = hamilton.d");
  net.run_until(net.now() + SimTime::millis(300));

  // London rebuilds E with a new document.
  std::printf("London rebuilds E with one new document...\n");
  london->rebuild_collection(
      "E", docmodel::DataSet{{make_doc(5, "e-1"), make_doc(6, "e-2")}});
  net.run_until(net.now() + SimTime::seconds(3));

  for (const auto& note : user->notifications()) {
    std::printf(
        "reader notified: %s — attributed to %s, physically from %s, via [",
        docmodel::event_type_name(note.event.type),
        note.event.collection.str().c_str(),
        note.event.physical_origin.str().c_str());
    for (std::size_t i = 0; i < note.event.via.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", note.event.via[i].c_str());
    }
    std::printf("], %zu new doc(s)\n", note.event.docs.size());
  }
  std::printf(
      "flow counters: London forwarded %llu event(s); Hamilton renamed "
      "%llu and published %llu broadcast(s)\n",
      static_cast<unsigned long long>(lon_stats->stats().aux_forwards),
      static_cast<unsigned long long>(ham_stats->stats().renames),
      static_cast<unsigned long long>(ham_stats->stats().events_published));
  if (trace_out.has_value()) {
    if (!tracer.write_chrome_trace(*trace_out)) {
      std::fprintf(stderr, "cannot write %s\n", trace_out->c_str());
      return 1;
    }
    std::printf("\nwrote %s (%zu spans); causal tree:\n%s", trace_out->c_str(),
                tracer.spans().size(), tracer.causal_tree().c_str());
  }
  return user->notifications().size() == 1 ? 0 : 1;
}
