// Continuous searching and browsing (paper §5 + §8 future work): a user's
// interactive search becomes a standing profile; the profile converts back
// into a search so the UI can display and edit it; the "watch this"
// button observes one document's identity.
//
//   ./continuous_search
#include <cstdio>

#include "alerting/alerting_service.h"
#include "alerting/client.h"
#include "alerting/continuous.h"
#include "common/strings.h"
#include "gds/tree_builder.h"
#include "gsnet/greenstone_server.h"
#include "profiles/parser.h"
#include "sim/network.h"

using namespace gsalert;

namespace {
docmodel::Document make_doc(DocumentId id, const char* title,
                            const char* creator) {
  docmodel::Document d;
  d.id = id;
  d.metadata.add("title", title);
  d.metadata.add("creator", creator);
  for (const auto& t : tokenize(title)) d.terms.push_back(t);
  return d;
}
}  // namespace

int main() {
  sim::Network net{8};
  gds::GdsTree tree = gds::build_tree(net, 2, 2);
  auto* hamilton = net.make_node<gsnet::GreenstoneServer>("Hamilton");
  hamilton->set_extension(std::make_unique<alerting::AlertingService>());
  hamilton->attach_gds(tree.nodes[1]->id());
  auto* user = net.make_node<alerting::Client>("reader");
  user->set_home(hamilton->id());
  net.start();
  net.run_until(SimTime::millis(100));

  docmodel::CollectionConfig cfg;
  cfg.name = "NZHistory";
  cfg.indexed_attributes = {"title", "creator"};
  cfg.classifier_attributes = {"creator"};
  hamilton->add_collection(
      cfg, docmodel::DataSet{{make_doc(1, "Colonial Shipping", "lee")}});
  net.run_until(net.now() + SimTime::millis(200));

  const CollectionRef coll{"Hamilton", "NZHistory"};

  // 1. Interactive search, then "continue this search as an alert".
  const char* query = "title:treaty OR waitangi";
  auto hits = hamilton->engine("NZHistory")->search(query);
  std::printf("interactive search '%s': %zu hit(s)\n", query,
              hits.ok() ? hits.value().size() : 0);
  auto profile_text = alerting::profile_from_search(coll, query);
  std::printf("as standing profile: %s\n", profile_text.value().c_str());
  user->subscribe(profile_text.value());

  // 2. "Watch this" on the browsed document.
  user->subscribe(alerting::profile_from_watch(coll, 1));
  // 3. Watch a browse classifier bucket.
  user->subscribe(alerting::profile_from_browse(coll, "creator", "orange"));
  net.run_until(net.now() + SimTime::millis(300));

  // New documents arrive over time.
  hamilton->add_documents(
      "NZHistory", {make_doc(2, "Treaty of Waitangi Sources", "orange")});
  hamilton->add_documents(
      "NZHistory", {make_doc(1, "Colonial Shipping (rev. ed.)", "lee")});
  net.run_until(net.now() + SimTime::seconds(1));

  for (const auto& note : user->notifications()) {
    std::printf("alert: sub #%llu — %s touching doc %llu\n",
                static_cast<unsigned long long>(note.subscription_id),
                docmodel::event_type_name(note.event.type),
                note.event.docs.empty()
                    ? 0ULL
                    : static_cast<unsigned long long>(note.event.docs[0].id));
  }

  // 4. And back: show the stored profile as the search it came from.
  auto parsed = profiles::parse_profile(profile_text.value());
  auto search = alerting::search_from_profile(parsed.value());
  std::printf("profile renders back as search on %s: %s\n",
              search.value().collection.str().c_str(),
              search.value().query->str().c_str());
  return user->notifications().size() >= 3 ? 0 : 1;
}
