// Federated digital library — the paper's Figure 1 world, end to end.
//
// Hosts Hamilton and London hold collections A–G (including a virtual
// collection C, a private collection G and the distributed collection D
// whose sub-collection E lives on London). Two receptionists give users
// transparent access; the alerting service notifies across hosts.
//
//   ./federated_library
#include <cstdio>
#include <optional>

#include "alerting/alerting_service.h"
#include "alerting/client.h"
#include "gds/tree_builder.h"
#include "gsnet/greenstone_server.h"
#include "gsnet/receptionist.h"
#include "sim/network.h"

using namespace gsalert;

namespace {

docmodel::Document make_doc(DocumentId id, const char* title) {
  docmodel::Document d;
  d.id = id;
  d.metadata.add("title", title);
  d.terms = {"library"};
  return d;
}

docmodel::CollectionConfig make_config(
    const char* name, std::vector<CollectionRef> subs = {},
    bool is_public = true) {
  docmodel::CollectionConfig c;
  c.name = name;
  c.sub_collections = std::move(subs);
  c.is_public = is_public;
  c.indexed_attributes = {"title"};
  return c;
}

void show(const char* what, const gsnet::CollResult& r) {
  if (!r.ok) {
    std::printf("%-12s -> error: %s\n", what, r.error.c_str());
    return;
  }
  std::printf("%-12s -> %zu docs, %u hops, %u servers", what, r.docs.size(),
              r.hops, r.servers_contacted);
  if (!r.error.empty()) std::printf("  (partial: %s)", r.error.c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  sim::Network net{7};
  net.set_default_path({.latency = SimTime::millis(15)});
  gds::GdsTree tree = gds::build_figure2_tree(net);

  auto* hamilton = net.make_node<gsnet::GreenstoneServer>("Hamilton");
  auto* london = net.make_node<gsnet::GreenstoneServer>("London");
  hamilton->set_extension(std::make_unique<alerting::AlertingService>());
  london->set_extension(std::make_unique<alerting::AlertingService>());
  hamilton->attach_gds(tree.nodes[2]->id());  // gds-3, stratum 3
  london->attach_gds(tree.nodes[5]->id());    // gds-6, stratum 3
  hamilton->set_host_ref("London", london->id());
  london->set_host_ref("Hamilton", hamilton->id());

  // Receptionist I reaches both hosts; II reaches only London (Figure 1).
  auto* recep1 = net.make_node<gsnet::Receptionist>("receptionist-I");
  recep1->add_host("Hamilton", hamilton->id());
  recep1->add_host("London", london->id());
  auto* recep2 = net.make_node<gsnet::Receptionist>("receptionist-II");
  recep2->add_host("London", london->id());

  auto* user = net.make_node<alerting::Client>("reader");
  user->set_home(hamilton->id());

  net.start();
  net.run_until(SimTime::millis(100));

  // Build the Figure 1 collections.
  hamilton->add_collection(make_config("A"), docmodel::DataSet{{make_doc(1, "a")}});
  hamilton->add_collection(make_config("B"), docmodel::DataSet{{make_doc(2, "b")}});
  hamilton->add_collection(make_config("C", {{"Hamilton", "B"}}),
                           docmodel::DataSet{});  // virtual
  hamilton->add_collection(make_config("D", {{"London", "E"}}),
                           docmodel::DataSet{{make_doc(4, "d")}});
  london->add_collection(make_config("E"), docmodel::DataSet{{make_doc(5, "e")}});
  london->add_collection(make_config("F", {{"London", "G"}}),
                         docmodel::DataSet{{make_doc(6, "f")}});
  london->add_collection(make_config("G", {}, /*is_public=*/false),
                         docmodel::DataSet{{make_doc(7, "g")}});
  net.run_until(SimTime::seconds(2));

  std::printf("--- transparent access through receptionists ---\n");
  auto open = [&](gsnet::Receptionist* r, const CollectionRef& ref,
                  const char* label) {
    std::optional<gsnet::CollResult> result;
    r->open_collection(ref, [&](gsnet::CollResult res) { result = res; });
    net.run_until(net.now() + SimTime::seconds(10));
    show(label, *result);
  };
  open(recep1, {"Hamilton", "A"}, "Hamilton.A");
  open(recep1, {"Hamilton", "C"}, "Hamilton.C");   // virtual -> B's data
  open(recep1, {"Hamilton", "D"}, "Hamilton.D");   // distributed -> d + e
  open(recep2, {"London", "F"}, "London.F");       // includes private G
  open(recep2, {"London", "G"}, "London.G");       // private: rejected
  open(recep2, {"Hamilton", "A"}, "via recep-II"); // no access to Hamilton

  std::printf("--- federated alerting over the GDS ---\n");
  user->subscribe("host = London");  // user sits at Hamilton
  net.run_until(net.now() + SimTime::millis(200));
  london->add_documents("E", {make_doc(8, "new arrival")});
  net.run_until(net.now() + SimTime::seconds(2));
  for (const auto& note : user->notifications()) {
    std::printf("reader notified: %s on %s\n",
                docmodel::event_type_name(note.event.type),
                note.event.collection.str().c_str());
  }
  std::printf("GDS deliveries: ");
  for (auto* node : tree.nodes) {
    std::printf("%s=%llu ", node->name().c_str(),
                static_cast<unsigned long long>(node->stats().deliveries));
  }
  std::printf("\n");
  return 0;
}
