// Churn and recovery — the paper's §7 discussion as a runnable timeline.
//
// A distributed collection spans a network link that fails. The example
// shows both directions of the "delayed, not lost" argument:
//   1. a sub-collection rebuild during the partition is notified only
//      after the link heals;
//   2. an auxiliary-profile cancellation issued during the partition is
//      applied on heal, before any spurious notification escapes.
//
//   ./churn_recovery
#include <cstdio>

#include "alerting/alerting_service.h"
#include "alerting/client.h"
#include "gds/tree_builder.h"
#include "gsnet/greenstone_server.h"
#include "sim/network.h"

using namespace gsalert;

namespace {
docmodel::Document make_doc(DocumentId id) {
  docmodel::Document d;
  d.id = id;
  d.metadata.add("title", "doc " + std::to_string(id));
  return d;
}

docmodel::DataSet docs_upto(DocumentId n) {
  docmodel::DataSet ds;
  for (DocumentId i = 1; i <= n; ++i) ds.add(make_doc(i));
  return ds;
}

void report(const char* when, const alerting::Client& user) {
  std::printf("%-42s user has %zu notification(s)\n", when,
              user.notifications().size());
}
}  // namespace

int main() {
  sim::Network net{9};
  net.set_default_path({.latency = SimTime::millis(10)});
  gds::GdsTree tree = gds::build_tree(net, 2, 2);

  auto* hamilton = net.make_node<gsnet::GreenstoneServer>("Hamilton");
  auto* london = net.make_node<gsnet::GreenstoneServer>("London");
  hamilton->set_extension(std::make_unique<alerting::AlertingService>());
  london->set_extension(std::make_unique<alerting::AlertingService>());
  hamilton->attach_gds(tree.nodes[1]->id());
  london->attach_gds(tree.nodes[2]->id());
  hamilton->set_host_ref("London", london->id());
  london->set_host_ref("Hamilton", hamilton->id());
  auto* user = net.make_node<alerting::Client>("user");
  user->set_home(hamilton->id());
  net.start();
  net.run_until(SimTime::millis(100));

  docmodel::CollectionConfig e;
  e.name = "E";
  london->add_collection(e, docs_upto(1));
  docmodel::CollectionConfig d;
  d.name = "D";
  d.sub_collections = {CollectionRef{"London", "E"}};
  hamilton->add_collection(d, docmodel::DataSet{});
  net.run_until(net.now() + SimTime::seconds(2));

  user->subscribe("ref = hamilton.d");
  net.run_until(net.now() + SimTime::millis(300));

  std::printf("== phase 1: rebuild during partition is delayed, not lost ==\n");
  net.block_pair(hamilton->id(), london->id());
  std::printf("t=%.1fs link Hamilton-London DOWN\n", net.now().as_seconds());
  london->rebuild_collection("E", docs_upto(2));
  net.run_until(net.now() + SimTime::seconds(5));
  report("during partition:", *user);

  net.unblock_pair(hamilton->id(), london->id());
  std::printf("t=%.1fs link UP again\n", net.now().as_seconds());
  net.run_until(net.now() + SimTime::seconds(5));
  report("after heal (retry delivered the event):", *user);

  std::printf("== phase 2: cancel during partition, no false positive ==\n");
  user->clear_notifications();
  net.block_pair(hamilton->id(), london->id());
  std::printf("t=%.1fs link DOWN; Hamilton drops the D->E link\n",
              net.now().as_seconds());
  hamilton->remove_sub_collection("D", CollectionRef{"London", "E"});
  net.run_until(net.now() + SimTime::seconds(5));
  net.unblock_pair(hamilton->id(), london->id());
  std::printf("t=%.1fs link UP; the cancellation replays\n",
              net.now().as_seconds());
  net.run_until(net.now() + SimTime::seconds(5));
  london->rebuild_collection("E", docs_upto(3));
  net.run_until(net.now() + SimTime::seconds(5));
  report("rebuild after cancelled link:", *user);
  return user->notifications().empty() ? 0 : 1;
}
