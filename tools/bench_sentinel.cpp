// bench_sentinel — perf regression gate over the canonical bench reports.
//
// Every bench writes BENCH_<name>.json ({"bench":...,"meta":{topology,
// regions},"metrics":{counters,gauges,histograms}}). The sentinel diffs
// a directory of fresh reports
// against the checked-in baselines in bench/baselines/, applying
// per-metric tolerance bands from a rules file: seeded-simulation metrics
// are byte-stable and get tight (often zero) bands, wall-clock metrics
// (match CPU, fsync, recovery micros, profiler totals) get wide ones.
// Any breach — or a baselined metric that vanished — fails the run.
//
// Modes:
//   bench_sentinel --baselines DIR --current DIR [--tolerances FILE]
//   bench_sentinel --schema-check DIR     every report must carry the
//                                         meta block (topology + region
//                                         count) and the latency.* schema
//                                         (e2e quantiles + per-stage
//                                         decomposition)
//   bench_sentinel --self-test            parser + rule engine + an
//                                         injected 2x latency regression
//                                         that MUST be caught
//
// Legacy *.before.json / *.after.json ablation pairs in the baseline
// directory are not sentinel subjects and are skipped.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough for the BENCH report shape (objects,
// arrays, strings, numbers, bools, null). No escapes beyond \" \\ \/ \n
// \t \r \b \f \uXXXX (decoded as '?' placeholder; metric names never use
// them).

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<std::pair<std::string, Json>> object;
  std::vector<Json> array;

  const Json* find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<Json> parse() {
    Json v;
    if (!value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

  std::string error() const { return error_; }

 private:
  bool fail(const char* what) {
    if (error_.empty()) {
      error_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected '\"'");
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u':
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          pos_ += 4;
          out.push_back('?');
          break;
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(double& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected number");
    try {
      out = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (...) {
      return fail("malformed number");
    }
    return true;
  }

  bool value(Json& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.type = Json::Type::kObject;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!string(key)) return false;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return fail("expected ':'");
        }
        ++pos_;
        Json child;
        if (!value(child)) return false;
        out.object.emplace_back(std::move(key), std::move(child));
        skip_ws();
        if (pos_ >= text_.size()) return fail("unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      out.type = Json::Type::kArray;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        Json child;
        if (!value(child)) return false;
        out.array.push_back(std::move(child));
        skip_ws();
        if (pos_ >= text_.size()) return fail("unterminated array");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.type = Json::Type::kString;
      return string(out.str);
    }
    if (c == 't') {
      out.type = Json::Type::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.type = Json::Type::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      out.type = Json::Type::kNull;
      return literal("null");
    }
    out.type = Json::Type::kNumber;
    return number(out.number);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Report flattening: one {key -> value} sample map per bench file. Scalar
// series keep their registry key; histogram/latency series fan out to
// key:field for each summary field, so rules can band quantiles
// individually. Keys are prefixed "<bench>/" so rules can scope a band to
// one bench (e.g. journal_recovery's wall-clock e2e vs fig2's sim-time
// e2e).

using Samples = std::map<std::string, double>;

const char* const kHistFields[] = {"count", "min",  "mean", "p50", "p90",
                                   "p95",   "p99",  "p999", "max"};

bool flatten_report(const Json& root, std::string& bench_name, Samples& out,
                    std::string& error) {
  const Json* bench = root.find("bench");
  const Json* metrics = root.find("metrics");
  if (bench == nullptr || bench->type != Json::Type::kString ||
      metrics == nullptr || metrics->type != Json::Type::kObject) {
    error = "not a BENCH report (missing \"bench\"/\"metrics\")";
    return false;
  }
  bench_name = bench->str;
  const std::string prefix = bench_name + "/";
  for (const char* group : {"counters", "gauges"}) {
    if (const Json* g = metrics->find(group)) {
      for (const auto& [key, v] : g->object) {
        if (v.type == Json::Type::kNumber) out[prefix + key] = v.number;
      }
    }
  }
  if (const Json* hists = metrics->find("histograms")) {
    for (const auto& [key, h] : hists->object) {
      if (h.type != Json::Type::kObject) continue;
      for (const char* field : kHistFields) {
        if (const Json* f = h.find(field)) {
          if (f->type == Json::Type::kNumber) {
            out[prefix + key + ":" + field] = f->number;
          }
        }
      }
    }
  }
  return true;
}

std::optional<Json> parse_file(const std::filesystem::path& path,
                               std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path.string();
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  JsonParser parser{text};
  auto parsed = parser.parse();
  if (!parsed) error = path.string() + ": " + parser.error();
  return parsed;
}

// ---------------------------------------------------------------------------
// Tolerance rules. One per line: `pattern direction tol_pct [abs_slack]`.
// Pattern is a glob over the flattened key ('*' matches any run,
// including '/'). direction: up = only growth is a regression, down =
// only shrinkage, both = either. First matching rule wins; keys no rule
// matches are not compared (wall-clock metrics nobody baselined stay
// advisory). `skip` as direction excludes a key explicitly.

struct Rule {
  std::string pattern;
  enum class Dir { kUp, kDown, kBoth, kSkip } dir = Rule::Dir::kBoth;
  double tol_pct = 0;
  double abs_slack = 0;
  int line = 0;
};

bool glob_match(const char* pattern, const char* text) {
  if (*pattern == '\0') return *text == '\0';
  if (*pattern == '*') {
    for (const char* t = text;; ++t) {
      if (glob_match(pattern + 1, t)) return true;
      if (*t == '\0') return false;
    }
  }
  if (*text == '\0') return false;
  if (*pattern != '?' && *pattern != *text) return false;
  return glob_match(pattern + 1, text + 1);
}

bool parse_rules(std::istream& in, const std::string& origin,
                 std::vector<Rule>& out) {
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    Rule rule;
    std::string dir;
    if (!(fields >> rule.pattern)) continue;  // blank / comment-only
    if (!(fields >> dir)) {
      std::fprintf(stderr, "%s:%d: rule needs `pattern dir [tol]`\n",
                   origin.c_str(), lineno);
      return false;
    }
    if (dir == "up") {
      rule.dir = Rule::Dir::kUp;
    } else if (dir == "down") {
      rule.dir = Rule::Dir::kDown;
    } else if (dir == "both") {
      rule.dir = Rule::Dir::kBoth;
    } else if (dir == "skip") {
      rule.dir = Rule::Dir::kSkip;
    } else {
      std::fprintf(stderr, "%s:%d: direction must be up|down|both|skip\n",
                   origin.c_str(), lineno);
      return false;
    }
    fields >> rule.tol_pct >> rule.abs_slack;  // optional; default 0
    rule.line = lineno;
    out.push_back(std::move(rule));
  }
  return true;
}

const Rule* first_match(const std::vector<Rule>& rules,
                        const std::string& key) {
  for (const Rule& rule : rules) {
    if (glob_match(rule.pattern.c_str(), key.c_str())) return &rule;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Comparison.

struct Regression {
  std::string key;
  std::string what;  // human-readable breach description
};

/// Diff `current` against `baseline` under `rules`, appending breaches.
/// Returns the number of samples actually compared (rule-matched).
std::size_t compare_samples(const Samples& baseline, const Samples& current,
                            const std::vector<Rule>& rules,
                            std::vector<Regression>& out) {
  std::size_t compared = 0;
  for (const auto& [key, base] : baseline) {
    const Rule* rule = first_match(rules, key);
    if (rule == nullptr || rule->dir == Rule::Dir::kSkip) continue;
    ++compared;
    const auto it = current.find(key);
    if (it == current.end()) {
      out.push_back({key, "metric disappeared from current report"});
      continue;
    }
    const double cur = it->second;
    const double allowed =
        std::abs(base) * rule->tol_pct / 100.0 + rule->abs_slack;
    char why[200];
    if ((rule->dir == Rule::Dir::kUp || rule->dir == Rule::Dir::kBoth) &&
        cur - base > allowed) {
      std::snprintf(why, sizeof why,
                    "rose %.6g -> %.6g (allowed +%.6g, rule line %d)", base,
                    cur, allowed, rule->line);
      out.push_back({key, why});
    } else if ((rule->dir == Rule::Dir::kDown ||
                rule->dir == Rule::Dir::kBoth) &&
               base - cur > allowed) {
      std::snprintf(why, sizeof why,
                    "fell %.6g -> %.6g (allowed -%.6g, rule line %d)", base,
                    cur, allowed, rule->line);
      out.push_back({key, why});
    }
  }
  return compared;
}

/// A canonical report file is BENCH_*.json but not a legacy ablation
/// snapshot (*.before.json / *.after.json) and not a raw google-benchmark
/// dump (GBENCH_*).
bool is_canonical_report(const std::string& filename) {
  if (filename.rfind("BENCH_", 0) != 0) return false;
  if (filename.size() < 5 || filename.substr(filename.size() - 5) != ".json") {
    return false;
  }
  if (filename.find(".before.json") != std::string::npos) return false;
  if (filename.find(".after.json") != std::string::npos) return false;
  return true;
}

std::vector<std::filesystem::path> list_reports(
    const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() &&
        is_canonical_report(entry.path().filename().string())) {
      out.push_back(entry.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool load_report(const std::filesystem::path& path, std::string& bench,
                 Samples& samples) {
  std::string error;
  const auto parsed = parse_file(path, error);
  if (!parsed) {
    std::fprintf(stderr, "bench_sentinel: %s\n", error.c_str());
    return false;
  }
  if (!flatten_report(*parsed, bench, samples, error)) {
    std::fprintf(stderr, "bench_sentinel: %s: %s\n", path.string().c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// --schema-check: the observability contract every bench must honour.
// Each canonical report needs the end-to-end latency histogram with its
// quantile set, and at least one per-stage decomposition series.

bool schema_check_file(const std::filesystem::path& path) {
  std::string error;
  const auto parsed = parse_file(path, error);
  if (!parsed) {
    std::fprintf(stderr, "bench_sentinel: %s\n", error.c_str());
    return false;
  }
  std::string bench;
  Samples samples;
  if (!flatten_report(*parsed, bench, samples, error)) {
    std::fprintf(stderr, "bench_sentinel: %s: %s\n", path.string().c_str(),
                 error.c_str());
    return false;
  }
  bool ok = true;
  // Every report must say what world it measured: a meta block naming
  // the WAN topology and its region count (docs/TOPOLOGY.md).
  const Json* meta = parsed->find("meta");
  const Json* topology =
      meta != nullptr ? meta->find("topology") : nullptr;
  const Json* regions = meta != nullptr ? meta->find("regions") : nullptr;
  if (meta == nullptr || meta->type != Json::Type::kObject ||
      topology == nullptr || topology->type != Json::Type::kString ||
      topology->str.empty() || regions == nullptr ||
      regions->type != Json::Type::kNumber || regions->number < 1) {
    std::fprintf(stderr,
                 "%s: missing/malformed meta block "
                 "(need {\"topology\":string,\"regions\":>=1})\n",
                 path.filename().c_str());
    ok = false;
  }
  // The e2e series may be unlabeled (latency.e2e_ms:p99) or carry
  // per-config labels (latency.e2e_ms{servers=100}:p99); either form
  // satisfies the contract as long as each quantile field is present.
  for (const char* field : {"count", "mean", "p50", "p95", "p99", "p999"}) {
    const std::string prefix = bench + "/latency.e2e_ms";
    const std::string suffix = std::string(":") + field;
    bool found = false;
    for (const auto& [key, value] : samples) {
      if (key.rfind(prefix, 0) == 0 && key.size() >= suffix.size() &&
          key.compare(key.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "%s: missing latency.e2e_ms ... %s\n",
                   path.filename().c_str(), field);
      ok = false;
    }
  }
  const std::string stage_prefix = bench + "/latency.stage.";
  bool has_stage = false;
  for (const auto& [key, value] : samples) {
    if (key.rfind(stage_prefix, 0) == 0) {
      has_stage = true;
      break;
    }
  }
  if (!has_stage) {
    std::fprintf(stderr, "%s: no latency.stage.* decomposition\n",
                 path.filename().c_str());
    ok = false;
  }
  return ok;
}

int run_schema_check(const std::filesystem::path& dir) {
  const auto reports = list_reports(dir);
  if (reports.empty()) {
    std::fprintf(stderr, "bench_sentinel: no BENCH_*.json under %s\n",
                 dir.string().c_str());
    return 1;
  }
  bool ok = true;
  for (const auto& path : reports) {
    ok = schema_check_file(path) && ok;
  }
  std::printf("schema-check: %zu report(s) under %s: %s\n", reports.size(),
              dir.string().c_str(), ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --baselines / --current comparison.

int run_compare(const std::filesystem::path& baselines,
                const std::filesystem::path& current,
                const std::filesystem::path& tolerances) {
  std::vector<Rule> rules;
  {
    std::ifstream in(tolerances);
    if (!in) {
      std::fprintf(stderr, "bench_sentinel: cannot open tolerances %s\n",
                   tolerances.string().c_str());
      return 2;
    }
    if (!parse_rules(in, tolerances.string(), rules)) return 2;
  }
  const auto base_files = list_reports(baselines);
  if (base_files.empty()) {
    std::fprintf(stderr, "bench_sentinel: no baselines under %s\n",
                 baselines.string().c_str());
    return 2;
  }
  std::vector<Regression> regressions;
  std::size_t compared = 0;
  std::size_t benches = 0;
  for (const auto& base_path : base_files) {
    const auto cur_path = current / base_path.filename();
    if (!std::filesystem::exists(cur_path)) {
      regressions.push_back({base_path.filename().string(),
                             "no current report (bench not run or broken)"});
      continue;
    }
    std::string base_bench;
    std::string cur_bench;
    Samples base;
    Samples cur;
    if (!load_report(base_path, base_bench, base) ||
        !load_report(cur_path, cur_bench, cur)) {
      return 2;
    }
    ++benches;
    compared += compare_samples(base, cur, rules, regressions);
  }
  std::printf("bench_sentinel: %zu bench(es), %zu metric(s) compared, "
              "%zu regression(s)\n",
              benches, compared, regressions.size());
  for (const auto& r : regressions) {
    std::printf("  REGRESSION %s: %s\n", r.key.c_str(), r.what.c_str());
  }
  return regressions.empty() ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --self-test: exercise the parser, the rule engine and the gate itself.
// The injected case is the one the sentinel exists for: current p99 at 2x
// the baseline must be reported as a regression.

const char* const kSelfTestBaseline = R"({"bench":"selftest","metrics":{
  "counters":{"outcome.delivered":42,"bench.messages":1000},
  "gauges":{"profiler.overhead_fraction":0.01,
            "delivery.queue_depth":0,"delivery.max_queue_depth":24},
  "histograms":{
    "latency.e2e_ms":{"count":64,"mean":12,"p50":10,"p95":30,"p99":40,
                      "p999":44,"max":44,"buckets":[[16,50],[32,10],[64,4]]},
    "latency.stage.flood_ms":{"count":64,"mean":4,"p50":4,"p95":6,"p99":8,
                              "p999":8,"max":8,"buckets":[[8,64]]}}}})";

const char* const kSelfTestRules =
    "# self-test bands\n"
    "*/latency.e2e_ms:count both 0\n"
    "*/latency.*:p99 up 75\n"
    "*/latency.* up 100 0.5\n"
    "*/outcome.* both 0\n"
    "*/bench.* both 1\n"
    "*/delivery.* both 0\n"
    "*/profiler.* skip\n";

std::optional<Samples> self_test_samples(const std::string& text) {
  JsonParser parser{text};
  auto parsed = parser.parse();
  if (!parsed) {
    std::fprintf(stderr, "self-test: parse failed: %s\n",
                 parser.error().c_str());
    return std::nullopt;
  }
  Samples samples;
  std::string bench;
  std::string error;
  if (!flatten_report(*parsed, bench, samples, error)) {
    std::fprintf(stderr, "self-test: flatten failed: %s\n", error.c_str());
    return std::nullopt;
  }
  return samples;
}

int run_self_test() {
  int failures = 0;
  const auto expect = [&](bool cond, const char* what) {
    std::printf("  %-58s %s\n", what, cond ? "ok" : "FAIL");
    if (!cond) ++failures;
  };

  std::vector<Rule> rules;
  std::istringstream rule_text{kSelfTestRules};
  if (!parse_rules(rule_text, "(self-test)", rules)) return 1;
  expect(rules.size() == 7, "rule file parses (7 rules)");
  expect(glob_match("*/latency.*:p99", "selftest/latency.e2e_ms:p99"),
         "glob matches scoped key");
  expect(!glob_match("*/latency.*:p99", "selftest/latency.e2e_ms:p95"),
         "glob rejects other field");

  const auto baseline = self_test_samples(kSelfTestBaseline);
  if (!baseline) return 1;
  expect(baseline->at("selftest/latency.e2e_ms:p99") == 40,
         "flatten extracts histogram quantile");
  expect(baseline->at("selftest/outcome.delivered") == 42,
         "flatten extracts counter");

  // Identical reports: clean pass.
  std::vector<Regression> none;
  compare_samples(*baseline, *baseline, rules, none);
  expect(none.empty(), "identical reports pass");

  // Injected 2x latency regression: p99 40 -> 80 must breach the 75%
  // band. Everything else untouched.
  Samples regressed = *baseline;
  regressed["selftest/latency.e2e_ms:p99"] = 80;
  std::vector<Regression> caught;
  compare_samples(*baseline, regressed, rules, caught);
  expect(caught.size() == 1 &&
             caught[0].key == "selftest/latency.e2e_ms:p99",
         "injected 2x p99 regression is caught");

  // An improvement in an up-only metric is not a regression.
  Samples improved = *baseline;
  improved["selftest/latency.e2e_ms:p99"] = 5;
  std::vector<Regression> improvements;
  compare_samples(*baseline, improved, rules, improvements);
  expect(improvements.empty(), "latency improvement passes an up-only band");

  // A deterministic counter drifting at all must trip its zero band.
  Samples drifted = *baseline;
  drifted["selftest/outcome.delivered"] = 41;
  std::vector<Regression> drift;
  compare_samples(*baseline, drifted, rules, drift);
  expect(drift.size() == 1, "zero-band counter drift is caught");

  // A baselined metric that vanished is a failure, not a skip.
  Samples missing = *baseline;
  missing.erase("selftest/latency.stage.flood_ms:p50");
  std::vector<Regression> gone;
  compare_samples(*baseline, missing, rules, gone);
  expect(gone.size() == 1, "vanished baselined metric is caught");

  // Delivery queue-depth series shape: the drained depth must stay at
  // zero and the seeded storm peak must not move — a deeper queue under
  // the same workload is a backpressure regression even if latency and
  // notification counts still pass their own bands.
  Samples deeper = *baseline;
  deeper["selftest/delivery.max_queue_depth"] = 48;
  std::vector<Regression> depth_grew;
  compare_samples(*baseline, deeper, rules, depth_grew);
  expect(depth_grew.size() == 1 &&
             depth_grew[0].key == "selftest/delivery.max_queue_depth",
         "queue-depth growth trips the delivery zero band");
  Samples undrained = *baseline;
  undrained["selftest/delivery.queue_depth"] = 3;
  std::vector<Regression> leftover;
  compare_samples(*baseline, undrained, rules, leftover);
  expect(leftover.size() == 1, "undrained queue at quiescence is caught");

  // Skip rules really skip: profiler gauge may move freely.
  Samples profiler_moved = *baseline;
  profiler_moved["selftest/profiler.overhead_fraction"] = 0.9;
  std::vector<Regression> skipped;
  compare_samples(*baseline, profiler_moved, rules, skipped);
  expect(skipped.empty(), "skip-rule metrics are not compared");

  std::printf("self-test: %s\n", failures == 0 ? "OK" : "FAILED");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path baselines;
  std::filesystem::path current;
  std::filesystem::path tolerances;
  std::filesystem::path schema_dir;
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_sentinel: %s needs a value\n",
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--baselines") {
      baselines = next();
    } else if (arg == "--current") {
      current = next();
    } else if (arg == "--tolerances") {
      tolerances = next();
    } else if (arg == "--schema-check") {
      schema_dir = next();
    } else if (arg == "--self-test") {
      self_test = true;
    } else {
      std::fprintf(
          stderr,
          "usage: bench_sentinel --baselines DIR --current DIR "
          "[--tolerances FILE] | --schema-check DIR | --self-test\n");
      return 2;
    }
  }
  if (self_test) return run_self_test();
  if (!schema_dir.empty()) return run_schema_check(schema_dir);
  if (baselines.empty() || current.empty()) {
    std::fprintf(stderr,
                 "bench_sentinel: need --baselines and --current "
                 "(or --self-test / --schema-check)\n");
    return 2;
  }
  if (tolerances.empty()) tolerances = baselines / "tolerances.txt";
  return run_compare(baselines, current, tolerances);
}
