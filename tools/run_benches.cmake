# Helper for the check-bench target: execute every bench binary in
# ${BENCH_DIR} from the current directory (so BENCH_*.json land here),
# failing fast on a non-zero bench exit.
file(GLOB benches ${BENCH_DIR}/bench_*)
foreach(bench ${benches})
  if(NOT IS_DIRECTORY ${bench})
    get_filename_component(name ${bench} NAME)
    message(STATUS "running ${name}")
    execute_process(COMMAND ${bench} RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "${name} exited with ${rc}")
    endif()
  endif()
endforeach()
